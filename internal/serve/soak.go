package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"murphy"
	"murphy/internal/chaos"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// SoakOptions configures one chaos soak drill of the always-on daemon.
type SoakOptions struct {
	// Duration is how long the overload phase hammers the daemon.
	Duration time.Duration
	// Steps / Samples / TrainWindow size the microsim scenario and Murphy's
	// sampling, reduced from paper scale to keep drills fast.
	Steps, Samples, TrainWindow int
	// QueueCap / Workers configure the daemon's diagnosis queue.
	QueueCap, Workers int
	// OverloadFactor multiplies QueueCap into the burst of concurrent
	// diagnosis requests fired at the daemon — 2.0 means twice the queue
	// capacity is offered at once, so sheds must happen.
	OverloadFactor float64
	// IngestWorkers is how many goroutines stream telemetry batches
	// concurrently (set above the ingest admission limit to force sheds).
	IngestWorkers int
	// ReadWorkers is the burst size of the read-path hammer: each round
	// fires this many simultaneous topology / performance / report-search
	// queries. The drill caps the daemon's MaxConcurrentReads at half this
	// burst, so the read surface runs at 2× overload and must shed.
	ReadWorkers int
	// DiagnoseDeadline bounds each hammer diagnosis (short, so some expire
	// into partial reports under chaos latency).
	DiagnoseDeadline time.Duration
	// Chaos is the fault injection on the daemon's telemetry read path.
	Chaos chaos.Config
	// SnapshotPath, when set, enables crash-safe persistence during the
	// drill ("" disables).
	SnapshotPath string
	// Seed drives the scenario and the hammer's randomness.
	Seed int64
}

// DefaultSoakOptions returns a drill sized for CI: a few seconds of
// sustained 2× overload under moderate chaos.
func DefaultSoakOptions() SoakOptions {
	return SoakOptions{
		Duration:         3 * time.Second,
		Steps:            200,
		Samples:          200,
		TrainWindow:      120,
		QueueCap:         4,
		Workers:          2,
		OverloadFactor:   2,
		IngestWorkers:    8,
		ReadWorkers:      4,
		DiagnoseDeadline: 1200 * time.Millisecond,
		Chaos: chaos.Config{
			Seed:        7,
			FaultRate:   0.05,
			LatencyRate: 0.05,
			Latency:     2 * time.Millisecond,
			CorruptRate: 0.02,
		},
		Seed: 1,
	}
}

func (o SoakOptions) withDefaults() SoakOptions {
	d := DefaultSoakOptions()
	if o.Duration <= 0 {
		o.Duration = d.Duration
	}
	if o.Steps <= 0 {
		o.Steps = d.Steps
	}
	if o.Samples <= 0 {
		o.Samples = d.Samples
	}
	if o.TrainWindow <= 0 {
		o.TrainWindow = d.TrainWindow
	}
	if o.QueueCap <= 0 {
		o.QueueCap = d.QueueCap
	}
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	if o.OverloadFactor <= 0 {
		o.OverloadFactor = d.OverloadFactor
	}
	if o.IngestWorkers <= 0 {
		o.IngestWorkers = d.IngestWorkers
	}
	if o.ReadWorkers <= 0 {
		o.ReadWorkers = d.ReadWorkers
	}
	if o.DiagnoseDeadline <= 0 {
		o.DiagnoseDeadline = d.DiagnoseDeadline
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// SoakResult is the outcome of one chaos soak drill: every count the
// degradation-ladder assertions (Violations) and the overload table in
// EXPERIMENTS.md are built from.
type SoakResult struct {
	Opts SoakOptions `json:"opts"`

	// Ingest-side counts.
	IngestRequests int `json:"ingest_requests"`
	IngestOK       int `json:"ingest_ok"`
	IngestShed     int `json:"ingest_shed"` // 429/503
	IngestPoints   int `json:"ingest_points"`

	// Diagnosis-side counts.
	DiagnoseRequests int `json:"diagnose_requests"`
	DiagnoseOK       int `json:"diagnose_ok"`
	DiagnoseShed     int `json:"diagnose_shed"` // 429/503
	PartialReports   int `json:"partial_reports"`
	FullReports      int `json:"full_reports"`

	// Read-side counts: the operator query surface (GET /topology,
	// /entities/{ref}/performance, /reports) hammered at 2× its admission
	// limit alongside the write-path overload.
	ReadRequests    int `json:"read_requests"`
	ReadOK          int `json:"read_ok"`
	ReadShed        int `json:"read_shed"` // 429/503
	ReadBurst       int `json:"read_burst"`
	ReadConcurrency int `json:"read_concurrency"`
	// ReadDrainShed records whether a query issued while the daemon was
	// draining answered 503 (reads must follow the same lifecycle as writes).
	ReadDrainShed bool `json:"read_drain_shed"`

	// Degradation-ladder evidence.
	UnexpectedStatus  map[string]int `json:"unexpected_status,omitempty"`
	ShedsMissingRetry int            `json:"sheds_missing_retry_after"`
	MaxQueueDepth     int            `json:"max_queue_depth"`
	QueueCap          int            `json:"queue_cap"`
	GoroutineDelta    int            `json:"goroutine_delta"`
	ReadyBefore       bool           `json:"ready_before"`
	ReadyDuringDrain  bool           `json:"not_ready_during_drain"`
	DrainErr          string         `json:"drain_error,omitempty"`

	// Final-report evidence: after the overload phase, a generous-deadline
	// diagnosis must come back as a well-formed versioned report — never a
	// hang and never a zero value. FinalRanked additionally records whether
	// the planted cause was still ranked (informational: the hammer's
	// replayed telemetry dilutes the incident signal, so ranking through it
	// is not a ladder requirement; snapshot-recovery accuracy is asserted
	// on clean data by the serve tests).
	FinalOK      bool    `json:"final_ok"`
	FinalRanked  bool    `json:"final_ranked"`
	TruthEntity  string  `json:"truth_entity"`
	P50DiagMs    float64 `json:"p50_diag_ms"`
	P99DiagMs    float64 `json:"p99_diag_ms"`
	WallMs       float64 `json:"wall_ms"`
	OfferedBurst int     `json:"offered_burst"`
}

// Violations checks the degradation ladder and returns one line per breach
// (empty = the drill passed): every response from a known-good status set,
// sheds carrying Retry-After, queue depth bounded by capacity, goroutines
// reclaimed after drain, readiness flipping around drain, and the final
// generous diagnosis still ranking the planted cause.
func (r *SoakResult) Violations() []string {
	var v []string
	for st, n := range r.UnexpectedStatus {
		v = append(v, fmt.Sprintf("%d responses with unexpected status %s", n, st))
	}
	if r.ShedsMissingRetry > 0 {
		v = append(v, fmt.Sprintf("%d shed responses missing Retry-After", r.ShedsMissingRetry))
	}
	if r.DiagnoseShed == 0 && r.OfferedBurst > r.QueueCap {
		v = append(v, fmt.Sprintf("no diagnosis sheds despite offering %d requests to a %d-slot queue", r.OfferedBurst, r.QueueCap))
	}
	if r.MaxQueueDepth > r.QueueCap {
		v = append(v, fmt.Sprintf("queue depth %d exceeded capacity %d", r.MaxQueueDepth, r.QueueCap))
	}
	if r.ReadOK == 0 && r.ReadRequests > 0 {
		v = append(v, "no read query succeeded during overload")
	}
	if r.ReadShed == 0 && r.ReadBurst > r.ReadConcurrency {
		v = append(v, fmt.Sprintf("no read sheds despite bursts of %d against a %d-slot read limit", r.ReadBurst, r.ReadConcurrency))
	}
	if r.ReadRequests > 0 && !r.ReadDrainShed {
		v = append(v, "read query during drain did not answer 503")
	}
	if r.GoroutineDelta > 2 {
		v = append(v, fmt.Sprintf("goroutine delta %d after drain (leak)", r.GoroutineDelta))
	}
	if !r.ReadyBefore {
		v = append(v, "daemon not ready before the overload phase")
	}
	if !r.ReadyDuringDrain {
		v = append(v, "readiness did not flip to 503 during drain")
	}
	if r.DrainErr != "" {
		v = append(v, "drain: "+r.DrainErr)
	}
	if !r.FinalOK {
		v = append(v, "final generous diagnosis did not produce a well-formed report")
	}
	if r.DiagnoseOK == 0 {
		v = append(v, "no diagnosis request succeeded during overload")
	}
	return v
}

// String renders the drill as an operator table.
func (r *SoakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %s at %gx overload, queue=%d workers=%d chaos(fault=%.2f lat=%.2f corrupt=%.2f)\n",
		r.Opts.Duration, r.Opts.OverloadFactor, r.QueueCap, r.Opts.Workers,
		r.Opts.Chaos.FaultRate, r.Opts.Chaos.LatencyRate, r.Opts.Chaos.CorruptRate)
	fmt.Fprintf(&b, "  ingest    %6d req  %6d ok  %6d shed  %8d points\n", r.IngestRequests, r.IngestOK, r.IngestShed, r.IngestPoints)
	fmt.Fprintf(&b, "  diagnose  %6d req  %6d ok  %6d shed  (%d full, %d partial)\n", r.DiagnoseRequests, r.DiagnoseOK, r.DiagnoseShed, r.FullReports, r.PartialReports)
	fmt.Fprintf(&b, "  reads     %6d req  %6d ok  %6d shed  (burst %d vs %d slots)\n", r.ReadRequests, r.ReadOK, r.ReadShed, r.ReadBurst, r.ReadConcurrency)
	fmt.Fprintf(&b, "  latency   p50=%.0fms p99=%.0fms  queue depth max %d/%d  goroutine delta %+d\n",
		r.P50DiagMs, r.P99DiagMs, r.MaxQueueDepth, r.QueueCap, r.GoroutineDelta)
	fmt.Fprintf(&b, "  ladder    ready-before=%v drain-flip=%v final-ok=%v final-ranked=%v", r.ReadyBefore, r.ReadyDuringDrain, r.FinalOK, r.FinalRanked)
	if vs := r.Violations(); len(vs) > 0 {
		fmt.Fprintf(&b, "\n  VIOLATIONS:\n")
		for _, v := range vs {
			fmt.Fprintf(&b, "    - %s\n", v)
		}
	} else {
		fmt.Fprintf(&b, "  [ok]\n")
	}
	return b.String()
}

// okStatus is the degradation ladder's allowed response set: success, the
// two shed codes, payload rejection, and client-side cancellation.
func okStatus(code int) bool {
	switch code {
	case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusRequestEntityTooLarge, http.StatusRequestTimeout:
		return true
	}
	return false
}

// RunSoak boots a daemon over a microsim scenario with chaos injected into
// its telemetry read path, hammers ingest and diagnosis past the admission
// limits for Duration, then drains gracefully — measuring the full
// degradation ladder along the way. It is the executable form of the
// robustness claims: under overload the daemon sheds (429/503 +
// Retry-After) instead of growing, under chaos it degrades to partial
// reports instead of failing, and after drain every goroutine is reclaimed.
func RunSoak(opts SoakOptions) (*SoakResult, error) {
	opts = opts.withDefaults()
	res := &SoakResult{Opts: opts, QueueCap: opts.QueueCap, UnexpectedStatus: map[string]int{}}

	simOpts := microsim.DefaultInterferenceOptions()
	simOpts.Steps = opts.Steps
	simOpts.Seed = opts.Seed
	sc, err := microsim.Interference(simOpts)
	if err != nil {
		return nil, fmt.Errorf("serve: soak scenario: %w", err)
	}
	res.TruthEntity = string(sc.TruthEntity)
	db := sc.Result.DB

	baseline := runtime.NumGoroutine()

	cfg := murphy.DefaultConfig()
	cfg.Samples = opts.Samples
	cfg.TrainWindow = opts.TrainWindow
	retry := murphy.RetryPolicy{MaxAttempts: 3}
	readSlots := opts.ReadWorkers / 2
	if readSlots < 1 {
		readSlots = 1
	}
	res.ReadBurst = opts.ReadWorkers
	res.ReadConcurrency = readSlots
	srv, err := New(db, Config{
		QueueCap:            opts.QueueCap,
		Workers:             opts.Workers,
		MaxConcurrentIngest: 2,
		MaxConcurrentReads:  readSlots,
		DefaultDeadline:     opts.DiagnoseDeadline,
		WatchdogTimeout:     30 * time.Second,
		DetectEvery:         75 * time.Millisecond,
		SnapshotPath:        opts.SnapshotPath,
		SnapshotEvery:       500 * time.Millisecond,
		DrainTimeout:        30 * time.Second,
	},
		murphy.WithConfig(cfg),
		murphy.WithSeeds(sc.Symptom.Entity),
		murphy.WithResilience(murphy.Resilience{
			Source: chaos.Wrap(db, opts.Chaos),
			Retry:  &retry,
		}),
	)
	if err != nil {
		return nil, err
	}
	srv.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("serve: soak listener: %w", err)
	}
	hs := &http.Server{Handler: srv.Mux()}
	go hs.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: time.Minute}

	res.ReadyBefore = getStatus(client, base+"/readyz") == http.StatusOK

	start := time.Now()
	stop := time.After(opts.Duration)
	var mu sync.Mutex
	var diagMs []float64
	var wg sync.WaitGroup

	// Ingest hammer: each worker streams batches that slide the telemetry
	// window forward, so the continuous detector always has fresh slices to
	// scan. Batches replay the scenario's trailing window cyclically (same
	// source slice across all entities, small jitter) so the appended
	// telemetry keeps the cross-entity correlations instead of drowning the
	// incident in white noise; an atomic slice counter keeps concurrent
	// workers from colliding on a slice.
	ents := db.Entities()
	if len(ents) > 8 {
		ents = ents[:8]
	}
	replayLen := opts.TrainWindow
	if l := db.Len(); replayLen > l {
		replayLen = l
	}
	baseSlice := db.Len()
	type seriesReplay struct {
		id     telemetry.EntityID
		metric string
		vals   []float64
	}
	var replay []seriesReplay
	for _, id := range ents {
		for _, metric := range db.MetricNames(id) {
			replay = append(replay, seriesReplay{
				id: id, metric: metric,
				vals: db.RawWindow(id, metric, baseSlice-replayLen, baseSlice),
			})
		}
	}
	var nextSlice int64 = int64(baseSlice)
	done := make(chan struct{})
	go func() { <-stop; close(done) }()
	for w := 0; w < opts.IngestWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				t := int(atomic.AddInt64(&nextSlice, 1) - 1)
				src := (t - baseSlice) % replayLen
				batch := IngestBatch{Slice: &t}
				for _, sr := range replay {
					v := sr.vals[src]
					if v != v { // missing in the source window stays missing
						continue
					}
					batch.Observations = append(batch.Observations, IngestPoint{
						Entity: sr.id, Metric: sr.metric, Value: v * (1 + 0.01*(rng.Float64()-0.5)),
					})
				}
				code, _, pts := postJSON(client, base+"/ingest", batch)
				mu.Lock()
				res.IngestRequests++
				switch {
				case code == http.StatusOK:
					res.IngestOK++
					res.IngestPoints += pts
				case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
					res.IngestShed++
				default:
					if !okStatus(code) {
						res.UnexpectedStatus[fmt.Sprintf("ingest:%d", code)]++
					}
				}
				mu.Unlock()
			}
		}(w)
	}

	// Diagnosis hammer: repeated bursts of OverloadFactor × QueueCap
	// concurrent requests for the scenario symptom, so the queue is always
	// offered more than it can hold.
	burst := int(opts.OverloadFactor * float64(opts.QueueCap))
	if burst < 1 {
		burst = 1
	}
	res.OfferedBurst = burst
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var bw sync.WaitGroup
			for i := 0; i < burst; i++ {
				bw.Add(1)
				go func() {
					defer bw.Done()
					req := DiagnoseRequest{
						Symptom:    sc.Symptom,
						DeadlineMs: int(opts.DiagnoseDeadline / time.Millisecond),
					}
					t0 := time.Now()
					code, body, _ := postJSON(client, base+"/diagnose", req)
					ms := float64(time.Since(t0)) / float64(time.Millisecond)
					mu.Lock()
					defer mu.Unlock()
					res.DiagnoseRequests++
					switch {
					case code == http.StatusOK:
						res.DiagnoseOK++
						diagMs = append(diagMs, ms)
						var rec ReportRecord
						if json.Unmarshal(body, &rec) == nil && rec.Report != nil {
							if rec.Report.Partial {
								res.PartialReports++
							} else {
								res.FullReports++
							}
						}
					case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
						res.DiagnoseShed++
						if !retryAfterPresent(body) {
							res.ShedsMissingRetry++
						}
					default:
						if !okStatus(code) {
							res.UnexpectedStatus[fmt.Sprintf("diagnose:%d", code)]++
						}
					}
				}()
			}
			bw.Wait()
		}
	}()

	// Read hammer: rounds of ReadWorkers simultaneous operator queries —
	// topology neighborhoods, per-entity performance summaries, and report
	// searches — against a read admission limit of half the burst, so the
	// query surface runs at 2× overload and must shed with 429 + Retry-After
	// while the write path is also saturated.
	readTargets := make([]string, 0, 2*len(ents)+1)
	for _, id := range ents {
		readTargets = append(readTargets,
			"/topology?entity="+url.QueryEscape(string(id))+"&depth=2",
			"/entities/"+string(id)+"/performance?window=64",
		)
	}
	readTargets = append(readTargets, "/reports?limit=100")
	wg.Add(1)
	go func() {
		defer wg.Done()
		round := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			var bw sync.WaitGroup
			for i := 0; i < opts.ReadWorkers; i++ {
				bw.Add(1)
				target := readTargets[(round+i)%len(readTargets)]
				go func() {
					defer bw.Done()
					code, body := getJSON(client, base+target)
					mu.Lock()
					defer mu.Unlock()
					res.ReadRequests++
					switch {
					case code == http.StatusOK:
						res.ReadOK++
					case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
						res.ReadShed++
						if !retryAfterPresent(body) {
							res.ShedsMissingRetry++
						}
					default:
						if !okStatus(code) {
							res.UnexpectedStatus[fmt.Sprintf("read:%d", code)]++
						}
					}
				}()
			}
			bw.Wait()
			round++
		}
	}()
	wg.Wait()

	// Read-saturation probe: the natural hammer races fast handlers, so
	// whether its bursts collide inside the admission window is timing luck.
	// Pin the ladder deterministically — occupy every read slot directly and
	// verify the excess query sheds 429 with Retry-After.
	for i := 0; i < readSlots; i++ {
		srv.readSem <- struct{}{}
	}
	satCode, satBody := getJSON(client, base+readTargets[0])
	res.ReadRequests++
	if satCode == http.StatusTooManyRequests || satCode == http.StatusServiceUnavailable {
		res.ReadShed++
		if !retryAfterPresent(satBody) {
			res.ShedsMissingRetry++
		}
	} else {
		res.UnexpectedStatus[fmt.Sprintf("read-saturated:%d", satCode)]++
	}
	for i := 0; i < readSlots; i++ {
		<-srv.readSem
	}

	// Final-accuracy probe: after the overload phase, one generous-deadline
	// diagnosis must still rank the planted cause near the top.
	finalReq := DiagnoseRequest{Symptom: sc.Symptom, DeadlineMs: 60000}
	code, body, _ := postJSON(client, base+"/diagnose", finalReq)
	if code == http.StatusOK {
		var rec ReportRecord
		if json.Unmarshal(body, &rec) == nil && rec.Report != nil {
			// Well-formed means a stamped schema and the requested symptom
			// echoed back — a zero-value Report has neither. An empty cause
			// list is a legitimate verdict (the replayed window dilutes the
			// incident), not a robustness failure.
			res.FinalOK = rec.Report.SchemaVersion == murphy.SchemaVersion &&
				rec.Report.Symptom == sc.Symptom
			res.FinalRanked = rankedWithin(rec.Report, sc.TruthEntity, sc.Acceptable, 3)
		}
	}

	// Drain: readiness must flip off while in-flight work finishes.
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	flipDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(flipDeadline) {
		if getStatus(client, base+"/readyz") == http.StatusServiceUnavailable {
			res.ReadyDuringDrain = true
			// Reads follow the same lifecycle: a draining daemon must answer
			// its query surface with 503, not serve stale results.
			if c, _ := getJSON(client, base+readTargets[0]); c == http.StatusServiceUnavailable {
				res.ReadDrainShed = true
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-drainDone; err != nil {
		res.DrainErr = err.Error()
	}
	// Drop the hammer clients' pooled connections first: a freshly dialed,
	// never-used conn sits in StateNew on the server, and Shutdown only
	// treats those as closable after a 5 s grace — so the timeout must
	// comfortably exceed that grace or an idle keep-alive races it.
	client.CloseIdleConnections()
	if err := ShutdownHTTP(hs, 10*time.Second); err != nil && res.DrainErr == "" {
		res.DrainErr = "http shutdown: " + err.Error()
	}

	// Goroutine reclamation: poll briefly — the runtime needs a moment to
	// retire handler goroutines after the listener closes.
	settle := time.Now().Add(3 * time.Second)
	for {
		res.GoroutineDelta = runtime.NumGoroutine() - baseline
		if res.GoroutineDelta <= 2 || time.Now().After(settle) {
			break
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}

	sort.Float64s(diagMs)
	res.P50DiagMs = percentile(diagMs, 0.50)
	res.P99DiagMs = percentile(diagMs, 0.99)
	res.MaxQueueDepth = srv.maxDepthSnapshot()
	res.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// maxDepthSnapshot reads the high-water queue depth.
func (s *Server) maxDepthSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxDepth
}

// rankedWithin reports whether the planted cause (or an acceptable
// alternative) appears in the report's top k causes.
func rankedWithin(rep *murphy.Report, truth telemetry.EntityID, acceptable []telemetry.EntityID, k int) bool {
	ok := map[telemetry.EntityID]bool{truth: true}
	for _, id := range acceptable {
		ok[id] = true
	}
	for i, c := range rep.Causes {
		if i >= k {
			break
		}
		if ok[c.Entity] {
			return true
		}
	}
	return false
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// postJSON posts v and returns (status, body, accepted-points). A transport
// error returns status 0, which the callers count as unexpected.
func postJSON(client *http.Client, url string, v any) (int, []byte, int) {
	buf, err := json.Marshal(v)
	if err != nil {
		return 0, nil, 0
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, 0
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	pts := 0
	if resp.StatusCode == http.StatusOK {
		var ir IngestResult
		if json.Unmarshal(body, &ir) == nil {
			pts = ir.Accepted
		}
	}
	return resp.StatusCode, body, pts
}

// retryAfterPresent checks the shed body's retry_after_s field (the header
// is also set; the body field survives the test client's round-trip either
// way).
func retryAfterPresent(body []byte) bool {
	var e errorBody
	return json.Unmarshal(body, &e) == nil && e.RetryAfter > 0
}

// getJSON fetches url and returns (status, body). A transport error returns
// status 0, which the callers count as unexpected.
func getJSON(client *http.Client, url string) (int, []byte) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	return resp.StatusCode, body
}

func getStatus(client *http.Client, url string) int {
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode
}
