// Package explainit implements the ExplainIt baseline (Jeyakumar et al.,
// SIGMOD 2019) as the paper uses it: fully automated pairwise-correlation
// root-cause ranking. For a problematic (entity, metric) symptom, every
// candidate entity is scored by the strongest absolute correlation between
// any of its metrics and the symptom metric over a recent window, ignoring
// the topology entirely. That topology-blindness is exactly the weakness the
// evaluation exposes (§2.3, §6).
package explainit

import (
	"fmt"
	"sort"

	"murphy/internal/stats"
	"murphy/internal/telemetry"
)

// Config holds ExplainIt's single tunable.
type Config struct {
	// Window is how many trailing slices the correlations are computed on.
	Window int
	// MinScore drops candidates whose best correlation is below it; the
	// FP-calibration protocol of §6.2 tunes this.
	MinScore float64
}

// DefaultConfig mirrors the evaluation setup: correlate over the same window
// Murphy trains on.
func DefaultConfig() Config { return Config{Window: 300, MinScore: 0} }

// Ranked is one scored candidate.
type Ranked struct {
	Entity telemetry.EntityID
	Score  float64 // best |corr| of any candidate metric with the symptom metric
}

// Diagnose ranks the candidates for the symptom by pairwise correlation.
// The candidate set should be the same pruned search space handed to every
// scheme (§4.2); the symptom entity itself is skipped if present.
func Diagnose(db *telemetry.DB, symptom telemetry.Symptom, candidates []telemetry.EntityID, cfg Config) ([]Ranked, error) {
	if cfg.Window <= 2 {
		cfg.Window = DefaultConfig().Window
	}
	hi := db.Len()
	lo := hi - cfg.Window
	if lo < 0 {
		lo = 0
	}
	target := db.Window(symptom.Entity, symptom.Metric, lo, hi)
	if len(target) < 3 {
		return nil, fmt.Errorf("explainit: not enough history for symptom %s", symptom)
	}
	var out []Ranked
	seen := make(map[telemetry.EntityID]bool, len(candidates))
	for _, cand := range candidates {
		if seen[cand] {
			continue
		}
		seen[cand] = true
		best := 0.0
		for _, metric := range db.MetricNames(cand) {
			if cand == symptom.Entity && metric == symptom.Metric {
				// The symptom entity scores through its *other* metrics;
				// a metric trivially correlates 1.0 with itself.
				continue
			}
			r := stats.AbsPearson(db.Window(cand, metric, lo, hi), target)
			if r > best {
				best = r
			}
		}
		if best >= cfg.MinScore {
			out = append(out, Ranked{Entity: cand, Score: best})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out, nil
}

// RankedIDs extracts the ordered entity IDs from a ranking.
func RankedIDs(rs []Ranked) []telemetry.EntityID {
	out := make([]telemetry.EntityID, len(rs))
	for i, r := range rs {
		out[i] = r.Entity
	}
	return out
}
