package explainit

import (
	"math/rand"
	"testing"

	"murphy/internal/telemetry"
)

func corrDB(t *testing.T) *telemetry.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	db := telemetry.NewDB(600)
	for _, id := range []telemetry.EntityID{"sym", "strong", "weak", "anti"} {
		if err := db.AddEntity(&telemetry.Entity{ID: id, Type: telemetry.TypeVM, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for tt := 0; tt < 100; tt++ {
		base := float64(tt%17) + rng.NormFloat64()
		if err := db.Observe("sym", telemetry.MetricCPU, tt, base); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("strong", telemetry.MetricRPS, tt, 2*base+rng.NormFloat64()*0.1); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("weak", telemetry.MetricRPS, tt, rng.NormFloat64()*10); err != nil {
			t.Fatal(err)
		}
		if err := db.Observe("anti", telemetry.MetricRPS, tt, -base+rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDiagnoseRanksByCorrelation(t *testing.T) {
	db := corrDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	got, err := Diagnose(db, sym, []telemetry.EntityID{"strong", "weak", "anti"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ranking = %+v", got)
	}
	if got[0].Entity != "strong" {
		t.Fatalf("strongest correlate should rank first, got %v", RankedIDs(got))
	}
	if got[len(got)-1].Entity != "weak" {
		t.Fatalf("uncorrelated entity should rank last, got %v", RankedIDs(got))
	}
	// Anti-correlation counts via absolute value: anti beats weak.
	if got[1].Entity != "anti" {
		t.Fatalf("anti-correlated should rank second, got %v", RankedIDs(got))
	}
}

func TestDiagnoseSelfCandidate(t *testing.T) {
	db := corrDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	got, err := Diagnose(db, sym, []telemetry.EntityID{"sym", "sym", "strong"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The symptom entity is a legal candidate, scored by its *other*
	// metrics (never by the symptom metric's trivial self-correlation),
	// and duplicates are collapsed.
	selfCount := 0
	for _, r := range got {
		if r.Entity == "sym" {
			selfCount++
			if r.Score >= 0.999 {
				t.Fatalf("self-candidate scored by its own symptom metric: %v", r.Score)
			}
		}
	}
	if selfCount > 1 {
		t.Fatal("duplicate candidates must be collapsed")
	}
}

func TestDiagnoseMinScore(t *testing.T) {
	db := corrDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	cfg := DefaultConfig()
	cfg.MinScore = 0.5
	got, err := Diagnose(db, sym, []telemetry.EntityID{"strong", "weak", "anti"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Score < 0.5 {
			t.Fatalf("MinScore violated: %+v", r)
		}
		if r.Entity == "weak" {
			t.Fatal("weak correlate should be cut off")
		}
	}
}

func TestDiagnoseInsufficientHistory(t *testing.T) {
	db := telemetry.NewDB(600)
	if err := db.AddEntity(&telemetry.Entity{ID: "x", Type: telemetry.TypeVM, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Observe("x", telemetry.MetricCPU, 0, 1); err != nil {
		t.Fatal(err)
	}
	sym := telemetry.Symptom{Entity: "x", Metric: telemetry.MetricCPU, High: true}
	if _, err := Diagnose(db, sym, nil, DefaultConfig()); err == nil {
		t.Fatal("too-short history should error")
	}
}

func TestZeroWindowFallsBackToDefault(t *testing.T) {
	db := corrDB(t)
	sym := telemetry.Symptom{Entity: "sym", Metric: telemetry.MetricCPU, High: true}
	got, err := Diagnose(db, sym, []telemetry.EntityID{"strong"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("ranking = %+v", got)
	}
}
