package tracing

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// sampleTrace builds frontend -> (search -> geo), user.
func sampleTrace(slice int) *Trace {
	return &Trace{
		Slice: slice,
		Spans: []Span{
			{ID: 0, Parent: -1, Service: "frontend", StartUS: 0, DurationUS: 1000},
			{ID: 1, Parent: 0, Service: "search", StartUS: 100, DurationUS: 500},
			{ID: 2, Parent: 1, Service: "geo", StartUS: 150, DurationUS: 200},
			{ID: 3, Parent: 0, Service: "user", StartUS: 700, DurationUS: 200, Error: true},
		},
	}
}

func TestTraceValidate(t *testing.T) {
	if err := sampleTrace(0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleTrace(0)
	bad.Spans[0].Parent = 5
	if bad.Validate() == nil {
		t.Fatal("non-root first span should fail")
	}
	bad = sampleTrace(0)
	bad.Spans[2].Parent = 99
	if bad.Validate() == nil {
		t.Fatal("unseen parent should fail")
	}
	bad = sampleTrace(0)
	bad.Spans[1].DurationUS = 99999 // escapes the root interval
	if bad.Validate() == nil {
		t.Fatal("child escaping parent should fail")
	}
	bad = sampleTrace(0)
	bad.Spans[1].ID = 0
	if bad.Validate() == nil {
		t.Fatal("duplicate span ID should fail")
	}
	if (&Trace{}).Validate() == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := sampleTrace(3)
	if tr.RootService() != "frontend" || tr.Duration() != 1000 {
		t.Fatal("root accessors wrong")
	}
	var empty Trace
	if empty.RootService() != "" || empty.Duration() != 0 {
		t.Fatal("empty accessors should be zero values")
	}
}

func TestSamplerBounds(t *testing.T) {
	if !(Sampler{Rate: 1}).Keep(42) {
		t.Fatal("rate 1 keeps everything")
	}
	if (Sampler{Rate: 0}).Keep(42) {
		t.Fatal("rate 0 keeps nothing")
	}
	// Deterministic per trace ID.
	s := Sampler{Rate: 0.5}
	if s.Keep(7) != s.Keep(7) {
		t.Fatal("sampler must be deterministic")
	}
}

func TestSamplerRateApproximation(t *testing.T) {
	s := Sampler{Rate: 0.3}
	kept := 0
	const n = 20000
	for i := int64(0); i < n; i++ {
		if s.Keep(i) {
			kept++
		}
	}
	frac := float64(kept) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("sampling fraction %v far from 0.3", frac)
	}
}

func TestStoreCollect(t *testing.T) {
	st := NewStore(1)
	ok, err := st.Collect(sampleTrace(0))
	if err != nil || !ok {
		t.Fatalf("collect failed: %v %v", ok, err)
	}
	if st.Len() != 1 || st.Dropped() != 0 {
		t.Fatal("store counts wrong")
	}
	if _, err := st.Collect(&Trace{}); err == nil {
		t.Fatal("invalid trace should be rejected")
	}
	// Sampling drops some.
	st2 := NewStore(0)
	ok, err = st2.Collect(sampleTrace(0))
	if err != nil || ok {
		t.Fatal("rate-0 store should drop")
	}
	if st2.Dropped() != 1 {
		t.Fatal("dropped count wrong")
	}
}

func TestServiceLatency(t *testing.T) {
	st := NewStore(1)
	for slice := 0; slice < 3; slice++ {
		if _, err := st.Collect(sampleTrace(slice)); err != nil {
			t.Fatal(err)
		}
	}
	lat := st.ServiceLatency("search", 3)
	for i, v := range lat {
		if math.Abs(v-0.5) > 1e-9 { // 500us = 0.5ms
			t.Fatalf("slice %d latency = %v", i, v)
		}
	}
	// Out-of-range slice traces are ignored.
	tr := sampleTrace(99)
	if _, err := st.Collect(tr); err != nil {
		t.Fatal(err)
	}
	lat = st.ServiceLatency("search", 3)
	if len(lat) != 3 {
		t.Fatal("length wrong")
	}
	// Unknown service: all NaN.
	for _, v := range st.ServiceLatency("ghost", 3) {
		if v == v {
			t.Fatal("unknown service should be NaN")
		}
	}
}

func TestLatencyPercentileAndErrorRate(t *testing.T) {
	st := NewStore(1)
	if _, err := st.Collect(sampleTrace(0)); err != nil {
		t.Fatal(err)
	}
	if p := st.LatencyPercentile("geo", 0.5); math.Abs(p-0.2) > 1e-9 {
		t.Fatalf("geo p50 = %v", p)
	}
	if p := st.LatencyPercentile("ghost", 0.5); p == p {
		t.Fatal("unknown service percentile should be NaN")
	}
	if er := st.ErrorRate("user"); er != 1 {
		t.Fatalf("user error rate = %v", er)
	}
	if er := st.ErrorRate("frontend"); er != 0 {
		t.Fatalf("frontend error rate = %v", er)
	}
	if er := st.ErrorRate("ghost"); er != 0 {
		t.Fatal("unknown service error rate should be 0")
	}
}

func TestCallGraphExtraction(t *testing.T) {
	st := NewStore(1)
	for i := 0; i < 3; i++ {
		if _, err := st.Collect(sampleTrace(i)); err != nil {
			t.Fatal(err)
		}
	}
	edges := st.CallGraph()
	want := map[[2]string]int{
		{"frontend", "search"}: 3,
		{"frontend", "user"}:   3,
		{"search", "geo"}:      3,
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %+v", edges)
	}
	for _, e := range edges {
		if want[[2]string{e.Caller, e.Callee}] != e.Count {
			t.Fatalf("edge %+v wrong", e)
		}
	}
	// Determinism: sorted order.
	for i := 1; i < len(edges); i++ {
		if edges[i-1].Caller > edges[i].Caller {
			t.Fatal("edges must be sorted")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	st := NewStore(1)
	for i := 0; i < 2; i++ {
		if _, err := st.Collect(sampleTrace(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip lost traces: %d", got.Len())
	}
	if got.Traces()[1].Spans[2].Service != "geo" {
		t.Fatal("span content lost")
	}
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Fatal("malformed JSON should error")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`[{"Slice":0,"Spans":[]}]`)); err == nil {
		t.Fatal("invalid trace in JSON should error")
	}
}

func TestCSVExport(t *testing.T) {
	st := NewStore(1)
	if _, err := st.Collect(sampleTrace(0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 spans
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "trace_id,slice,span_id") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[4], "user") || !strings.Contains(lines[4], "true") {
		t.Fatalf("error span row wrong: %q", lines[4])
	}
}

// Property: sampling keeps a trace independent of collection order.
func TestSamplerOrderIndependenceProperty(t *testing.T) {
	f := func(id int64, rate float64) bool {
		rate = math.Mod(math.Abs(rate), 1)
		s := Sampler{Rate: rate}
		a := s.Keep(id)
		b := s.Keep(id)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
