package tracing

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON exports the sampled traces as a JSON array, the format of the
// trace dataset released with the paper's artifacts.
func (st *Store) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(st.traces)
}

// ReadJSON imports traces previously exported with WriteJSON into a fresh
// store (no further sampling is applied).
func ReadJSON(r io.Reader) (*Store, error) {
	var traces []*Trace
	if err := json.NewDecoder(r).Decode(&traces); err != nil {
		return nil, fmt.Errorf("tracing: decode traces: %w", err)
	}
	st := NewStore(1)
	for _, t := range traces {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		st.traces = append(st.traces, t)
		if t.TraceID >= st.nextID {
			st.nextID = t.TraceID + 1
		}
	}
	return st, nil
}

// WriteCSV exports one row per span: trace_id, slice, span_id, parent_id,
// service, start_us, duration_us, error.
func (st *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace_id", "slice", "span_id", "parent_id", "service", "start_us", "duration_us", "error"}); err != nil {
		return err
	}
	for _, t := range st.traces {
		for _, s := range t.Spans {
			rec := []string{
				strconv.FormatInt(t.TraceID, 10),
				strconv.Itoa(t.Slice),
				strconv.Itoa(int(s.ID)),
				strconv.Itoa(int(s.Parent)),
				s.Service,
				strconv.FormatInt(s.StartUS, 10),
				strconv.FormatInt(s.DurationUS, 10),
				strconv.FormatBool(s.Error),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
