// Package tracing is the Jaeger-like distributed-tracing substrate of the
// microservice testbeds (§5.1.2): spans, traces, a probabilistic sampler, a
// trace store with time-bucketed latency aggregation, and the call-graph
// extractor that derives the causal DAG a scheme like Sage consumes. The
// microsim emulator emits traces through a Collector; everything downstream
// works only with the collected store, as a real deployment would with a
// Jaeger backend.
package tracing

import (
	"fmt"
	"sort"

	"murphy/internal/stats"
)

// SpanID identifies a span within one trace.
type SpanID int

// Span is one operation execution inside a trace.
type Span struct {
	ID SpanID
	// Parent is the caller's span ID, or -1 for the root span.
	Parent SpanID
	// Service is the service that executed the operation.
	Service string
	// StartUS and DurationUS are microseconds relative to the trace start.
	StartUS, DurationUS int64
	// Error marks a failed span.
	Error bool
}

// Trace is one end-to-end request: a tree of spans.
type Trace struct {
	// TraceID is unique within a store.
	TraceID int64
	// Slice is the 10-second collection interval the trace belongs to.
	Slice int
	// Spans holds the tree; Spans[0] is the root.
	Spans []Span
}

// RootService returns the entry service of the trace.
func (t *Trace) RootService() string {
	if len(t.Spans) == 0 {
		return ""
	}
	return t.Spans[0].Service
}

// Duration returns the root span's duration in microseconds.
func (t *Trace) Duration() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[0].DurationUS
}

// Validate checks structural integrity: a single root, parents appearing
// before children, children contained within their parent's interval.
func (t *Trace) Validate() error {
	if len(t.Spans) == 0 {
		return fmt.Errorf("tracing: empty trace %d", t.TraceID)
	}
	if t.Spans[0].Parent != -1 {
		return fmt.Errorf("tracing: trace %d: first span is not a root", t.TraceID)
	}
	byID := make(map[SpanID]*Span, len(t.Spans))
	for i := range t.Spans {
		s := &t.Spans[i]
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("tracing: trace %d: duplicate span %d", t.TraceID, s.ID)
		}
		byID[s.ID] = s
		if i == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			return fmt.Errorf("tracing: trace %d: span %d has unseen parent %d", t.TraceID, s.ID, s.Parent)
		}
		if s.StartUS < p.StartUS || s.StartUS+s.DurationUS > p.StartUS+p.DurationUS {
			return fmt.Errorf("tracing: trace %d: span %d escapes its parent's interval", t.TraceID, s.ID)
		}
	}
	return nil
}

// Sampler decides which traces are kept. Jaeger-style probabilistic
// head sampling with a deterministic hash of the trace ID.
type Sampler struct {
	// Rate is the fraction of traces kept, in [0, 1].
	Rate float64
}

// Keep reports whether the trace with the given ID is sampled.
func (s Sampler) Keep(traceID int64) bool {
	if s.Rate >= 1 {
		return true
	}
	if s.Rate <= 0 {
		return false
	}
	// SplitMix64 finalizer as a uniform hash.
	z := uint64(traceID) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z%1e6)/1e6 < s.Rate
}

// Store collects sampled traces and serves aggregations.
type Store struct {
	sampler Sampler
	traces  []*Trace
	nextID  int64
	dropped int
}

// NewStore returns a store with the given sampling rate.
func NewStore(samplingRate float64) *Store {
	return &Store{sampler: Sampler{Rate: samplingRate}}
}

// Collect offers a trace to the store, assigning its trace ID; it returns
// whether the trace was sampled in.
func (st *Store) Collect(t *Trace) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	t.TraceID = st.nextID
	st.nextID++
	if !st.sampler.Keep(t.TraceID) {
		st.dropped++
		return false, nil
	}
	st.traces = append(st.traces, t)
	return true, nil
}

// Len returns the number of sampled traces; Dropped the number discarded.
func (st *Store) Len() int     { return len(st.traces) }
func (st *Store) Dropped() int { return st.dropped }

// Traces returns all sampled traces (shared; read-only).
func (st *Store) Traces() []*Trace { return st.traces }

// ServiceLatency returns per-slice mean latency (ms) of a service's spans,
// aggregated over the 10-second intervals — the Jaeger-derived service
// latency series of §5.1.2. Slices with no spans report NaN.
func (st *Store) ServiceLatency(service string, slices int) []float64 {
	sum := make([]float64, slices)
	cnt := make([]int, slices)
	for _, t := range st.traces {
		if t.Slice < 0 || t.Slice >= slices {
			continue
		}
		for _, s := range t.Spans {
			if s.Service != service {
				continue
			}
			sum[t.Slice] += float64(s.DurationUS) / 1000
			cnt[t.Slice]++
		}
	}
	out := make([]float64, slices)
	for i := range out {
		if cnt[i] == 0 {
			out[i] = nan()
		} else {
			out[i] = sum[i] / float64(cnt[i])
		}
	}
	return out
}

// LatencyPercentile returns the p-quantile of a service's span durations
// (ms) across the whole store, or NaN when the service has no spans.
func (st *Store) LatencyPercentile(service string, p float64) float64 {
	var ds []float64
	for _, t := range st.traces {
		for _, s := range t.Spans {
			if s.Service == service {
				ds = append(ds, float64(s.DurationUS)/1000)
			}
		}
	}
	if len(ds) == 0 {
		return nan()
	}
	return stats.Quantile(ds, p)
}

// CallEdge is one observed caller→callee pair with its call count.
type CallEdge struct {
	Caller, Callee string
	Count          int
}

// CallGraph extracts the service call graph from the sampled traces: the
// causal DAG Sage-style tools consume. Edges are sorted for determinism.
func (st *Store) CallGraph() []CallEdge {
	counts := map[[2]string]int{}
	for _, t := range st.traces {
		byID := make(map[SpanID]string, len(t.Spans))
		for _, s := range t.Spans {
			byID[s.ID] = s.Service
		}
		for _, s := range t.Spans {
			if s.Parent == -1 {
				continue
			}
			caller := byID[s.Parent]
			if caller == s.Service {
				continue // internal span, not an RPC
			}
			counts[[2]string{caller, s.Service}]++
		}
	}
	out := make([]CallEdge, 0, len(counts))
	for k, c := range counts {
		out = append(out, CallEdge{Caller: k[0], Callee: k[1], Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// ErrorRate returns the fraction of a service's spans that failed, or 0
// when it has none.
func (st *Store) ErrorRate(service string) float64 {
	total, errs := 0, 0
	for _, t := range st.traces {
		for _, s := range t.Spans {
			if s.Service == service {
				total++
				if s.Error {
					errs++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(errs) / float64(total)
}

func nan() float64 { var z float64; return z / z }
