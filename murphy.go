// Package murphy is a from-scratch Go reproduction of Murphy, the
// performance-diagnosis system for distributed cloud applications presented
// at SIGCOMM 2023 (Harsh et al.). Given commonly available monitoring
// telemetry — entities, loose metadata associations, per-metric time series —
// Murphy diagnoses a problematic (entity, metric) symptom by training a
// Markov Random Field over the relationship graph online and running a
// counterfactual Gibbs-sampling-variant inference to find the entities whose
// normalization would alleviate the symptom. The diagnosis comes with a
// ranked short list of root causes and human-readable explanation chains.
//
// The package is a facade over the building blocks in internal/: the
// telemetry substrate, the relationship graph, the MRF core, the explanation
// generator, and the symptom detector. A minimal session:
//
//	db := telemetry.NewDB(600)
//	// ... add entities, associations, and metric observations ...
//	sys, err := murphy.New(db, murphy.WithSeeds("backend-vm"))
//	report, err := sys.Diagnose(telemetry.Symptom{
//		Entity: "backend-vm", Metric: telemetry.MetricCPU, High: true,
//	})
//	for _, rc := range report.Causes {
//		fmt.Println(rc.Entity, rc.Explanation)
//	}
//
// # API stability
//
// The exported surface of this package is versioned: Report carries
// SchemaVersion and round-trips through WriteJSON/ReadJSON, internal types
// appear only as intentional aliases (Config, RetryPolicy, BreakerConfig,
// FactorCache, Observer, …), and apisurface_test.go pins the exported
// declarations against a golden file so surface changes are deliberate.
// Context-taking methods (DiagnoseContext, WhatIfContext) are canonical;
// their context-less twins are one-line Background wrappers.
//
// # Observability
//
// The pipeline self-instruments: per-stage spans (train, prune, test, rank,
// explain) with wall/CPU timings, counters (factors trained, cache hits,
// Gibbs samples, early-stop decisions, retries, breaker trips), and a
// progress-event stream. Subscribe with WithObserver, enable passive
// collection with WithStats, read it back with Stats, or serve it with
// MetricsHandler / ObservabilityMux. Disabled (the default), the whole layer
// costs one predicted branch per call site.
package murphy

import (
	"context"
	"fmt"

	"murphy/internal/anomaly"
	"murphy/internal/core"
	"murphy/internal/explain"
	"murphy/internal/graph"
	"murphy/internal/obs"
	"murphy/internal/resilience"
	"murphy/internal/telemetry"
)

// System is a diagnosis session bound to one monitoring database. It builds
// the relationship graph once; every Diagnose call trains the MRF online on
// the trailing window, per the paper's online-training design.
type System struct {
	db     *telemetry.DB
	g      *graph.Graph
	cfg    Config
	th     explain.Thresholds
	maxHop int
	seeds  []telemetry.EntityID
	// src is the read path used for online training; defaults to db.
	// WithResilience interposes another source and/or wraps it in the
	// resilience layer.
	src     telemetry.Source
	retry   *resilience.Policy
	brkCfg  *resilience.BreakerConfig
	breaker *resilience.Breaker
	rsrc    *resilience.Source
	workers int
	// trainWorkers bounds the training-pass worker pool (0 = follow workers).
	trainWorkers int
	// cache, when set, carries trained factors across the Diagnose calls of
	// this System (and any other System sharing the cache).
	cache *core.FactorCache
	// incStore, when set, amortizes training by sliding per-factor
	// sufficient statistics across Diagnose calls (WithIncrementalTraining).
	// It subsumes cache when both are configured.
	incStore *core.FactorStore
	// rec is the session's instrumentation recorder. Always non-nil;
	// disabled unless WithObserver/WithStats (or EnableStats) turned it on.
	rec *obs.Recorder
}

// New builds a diagnosis session over a monitoring database.
func New(db *telemetry.DB, opts ...Option) (*System, error) {
	if db == nil || db.NumEntities() == 0 {
		return nil, fmt.Errorf("murphy: empty monitoring database")
	}
	s := &System{
		db:     db,
		cfg:    core.DefaultConfig(),
		th:     explain.DefaultThresholds(),
		maxHop: -1,
		rec:    obs.New(),
	}
	for _, o := range opts {
		o(s)
	}
	if len(s.seeds) == 0 {
		s.seeds = db.Entities()
	}
	g, err := graph.Build(db, s.seeds, s.maxHop)
	if err != nil {
		return nil, fmt.Errorf("murphy: build relationship graph: %w", err)
	}
	s.g = g
	if s.src == nil {
		s.src = db
	}
	if s.retry != nil || s.brkCfg != nil {
		var retry resilience.Policy
		if s.retry != nil {
			retry = *s.retry
		} else {
			retry.MaxAttempts = 1 // breaker only, no retries
		}
		if s.brkCfg != nil {
			s.breaker = resilience.NewBreaker(*s.brkCfg)
			rec := s.rec
			s.breaker.SetOnTrip(func() { rec.Add(obs.CtrBreakerTrips, 1) })
		}
		s.rsrc = resilience.NewSource(s.src, retry, s.breaker)
		rec := s.rec
		s.rsrc.SetHook(func(retried, failed bool) {
			// Failed reads are counted by the training pass when it
			// degrades them to missing data; only retried-to-success
			// reads are invisible to it.
			if retried {
				rec.Add(obs.CtrReadRetries, 1)
			}
		})
		s.src = s.rsrc
	}
	return s, nil
}

// Graph exposes the relationship graph (entity count, cycles, …).
func (s *System) Graph() *graph.Graph { return s.g }

// Diagnose trains the MRF online on the trailing window and runs the full
// §4.2 inference for one symptom, then attaches explanation chains (§4.3).
// It is DiagnoseContext with a background context (cfg.Timeout, when set,
// still bounds the call).
func (s *System) Diagnose(symptom telemetry.Symptom) (*Report, error) {
	return s.DiagnoseContext(context.Background(), symptom)
}

// DiagnoseContext is the canonical diagnosis entry point: Diagnose under
// cooperative cancellation, for deadline-bound operation:
//
//   - A context deadline that expires mid-inference yields a *partial*
//     Report, not an error: the causes certified so far stay ranked,
//     unevaluated candidates are flagged in Skipped and fall back to
//     anomaly-score-only entries (Degraded=true) at the end of Causes.
//   - An explicitly cancelled context returns promptly with an error
//     wrapping context.Canceled.
//   - A deadline that expires during training (before inference can start)
//     returns an error: there is no model to answer with.
func (s *System) DiagnoseContext(ctx context.Context, symptom telemetry.Symptom) (*Report, error) {
	model, err := s.train(ctx)
	if err != nil {
		return nil, err
	}
	return s.diagnoseWith(ctx, model, symptom)
}

// diagnoseWith runs inference + explanation for one symptom against an
// already-trained model. It is the shared back half of DiagnoseContext and
// DiagnoseBatch.
func (s *System) diagnoseWith(ctx context.Context, model *core.Model, symptom telemetry.Symptom) (*Report, error) {
	var diag *core.Diagnosis
	var err error
	if s.workers > 1 {
		diag, err = model.DiagnoseParallelContext(ctx, symptom, s.workers)
	} else {
		diag, err = model.DiagnoseContext(ctx, symptom)
	}
	if err != nil {
		return nil, err
	}
	labeler := explain.NewLabeler(model, s.db, s.th)
	since := model.Now() - s.cfg.TrainWindow
	if since < 0 {
		since = 0
	}
	report := &Report{
		SchemaVersion: SchemaVersion,
		Symptom:       symptom,
		Candidates:    diag.Candidates,
		RecentChanges: s.db.EventsSince(since),
		Partial:       diag.Partial,
		ReadFailures:  len(model.ReadFailures()),
	}
	for _, sk := range diag.Skipped {
		report.Skipped = append(report.Skipped, Skipped{Entity: sk.Entity, Reason: sk.Reason})
	}
	sp := s.rec.StartStage(obs.StageExplain)
	for _, c := range diag.Causes {
		rc := causeFromCore(c)
		if chain, ok := explain.Explain(labeler, s.g, c.Entity, symptom.Entity); ok {
			rc.Explanation = chain.Render(s.db)
		}
		report.Causes = append(report.Causes, rc)
	}
	// Degraded fallbacks ride at the tail: visible, flagged, never ahead of
	// a certified cause. No explanation chains — their evaluation never ran.
	for _, c := range diag.Degraded {
		report.Causes = append(report.Causes, causeFromCore(c))
	}
	sp.End()
	return report, nil
}

// BatchItem is one symptom's outcome within a DiagnoseBatch call: the report
// when its diagnosis completed, or the error that stopped it. Exactly one of
// Report and Err is set.
type BatchItem struct {
	Symptom telemetry.Symptom
	Report  *Report
	Err     error
}

// DiagnoseBatch diagnoses several symptoms of one incident against a single
// online-trained model: the MRF is trained once (on the pool configured by
// WithParallelTraining) and every symptom then reuses it — along with the
// session's shortest-path subgraph cache and factor cache — instead of paying
// the per-call retraining that separate Diagnose calls would. Per-symptom
// failures (unknown entity, cancellation mid-inference) land in the item's
// Err without aborting the remaining symptoms; the call itself errors only
// when training fails, since then no symptom can be answered. Reports are
// identical to what per-symptom DiagnoseContext calls at the same time slice
// would produce.
func (s *System) DiagnoseBatch(ctx context.Context, symptoms []telemetry.Symptom) ([]BatchItem, error) {
	if len(symptoms) == 0 {
		return nil, nil
	}
	model, err := s.train(ctx)
	if err != nil {
		return nil, err
	}
	items := make([]BatchItem, len(symptoms))
	for i, sym := range symptoms {
		items[i].Symptom = sym
		if err := ctx.Err(); err != nil {
			items[i].Err = fmt.Errorf("murphy: diagnosis cancelled: %w", err)
			continue
		}
		items[i].Report, items[i].Err = s.diagnoseWith(ctx, model, sym)
	}
	return items, nil
}

// train fits the MRF through the configured read path.
func (s *System) train(ctx context.Context) (*core.Model, error) {
	opts := core.TrainOpts{Now: -1, Cache: s.cache, Store: s.incStore, Obs: s.rec, Workers: s.trainWorkers}
	if opts.Workers == 0 {
		// Unset: a session that fans inference out across workers gets the
		// same fan-out for its training fits.
		opts.Workers = s.workers
	}
	if plain, ok := s.src.(*telemetry.DB); !ok || plain != s.db {
		// An interposed source (chaos, resilience, remote): route reads
		// through it. The factor cache is bypassed on this path.
		opts.Src = s.src
	}
	return core.TrainOpt(ctx, s.db, s.g, s.cfg, opts)
}

// WhatIf answers the §7 performance-reasoning question: if the given entity
// metrics were set to these values, what would the target metric become? It
// is WhatIfContext with a background context.
func (s *System) WhatIf(overrides map[telemetry.EntityID]map[string]float64, target telemetry.EntityID, targetMetric string) (predicted, current float64, ok bool, err error) {
	return s.WhatIfContext(context.Background(), overrides, target, targetMetric)
}

// WhatIfContext is the canonical what-if entry point, under cooperative
// cancellation (the online training pass honors the context; the
// deterministic propagation itself is fast and runs to completion). The
// prediction propagates the intervention through the relationship graph with
// the configured number of Gibbs rounds; predicted is meaningful only when
// ok is true (some override can reach the target). The returned current
// value is the target's value at the diagnosis slice.
func (s *System) WhatIfContext(ctx context.Context, overrides map[telemetry.EntityID]map[string]float64, target telemetry.EntityID, targetMetric string) (predicted, current float64, ok bool, err error) {
	model, err := s.train(ctx)
	if err != nil {
		return 0, 0, false, err
	}
	pred, reached := model.PredictUnderIntervention(overrides, target, targetMetric, 0)
	return pred, model.CurrentValue(target, targetMetric), reached, nil
}

// FindSymptoms scans an affected application for problematic (entity,
// metric) pairs at the latest time slice (Appendix A.1), most anomalous
// first, so a ticket that names only an application can be turned into
// concrete Diagnose calls.
func (s *System) FindSymptoms(app string) []telemetry.Symptom {
	det := anomaly.NewDetector()
	scored := det.ScanApp(s.db, app, s.db.Len()-1)
	out := make([]telemetry.Symptom, len(scored))
	for i, sc := range scored {
		out[i] = sc.Symptom
	}
	return out
}

// FactorCacheStats reports the factor cache's hit/miss counters. ok is false
// when no factor cache is configured (WithCaching/WithFactorCache unused),
// distinguishing "disabled" from a configured cache that has absorbed no
// traffic yet.
func (s *System) FactorCacheStats() (stats FactorCacheStats, ok bool) {
	if s.cache == nil {
		return FactorCacheStats{}, false
	}
	return s.cache.Stats(), true
}

// FactorStoreStats reports the incremental trainer's hit/refit/drift
// counters. ok is false when incremental training is not configured
// (WithIncrementalTraining unused), distinguishing "disabled" from a
// configured store that has absorbed no traffic yet.
func (s *System) FactorStoreStats() (stats FactorStoreStats, ok bool) {
	if s.incStore == nil {
		return FactorStoreStats{}, false
	}
	return s.incStore.Stats(), true
}

// FactorStore returns the session's incremental factor store, or nil when
// incremental training is not configured. Daemons use the handle to
// snapshot the store into their crash-safe checkpoints and restore it on
// warm restart.
func (s *System) FactorStore() *FactorStore {
	return s.incStore
}

// SourceStats reports what the resilient read layer absorbed so far. ok is
// false when no resilient read path is configured (WithResilience with a
// retry policy or breaker unused), distinguishing "disabled" from a
// configured layer that has absorbed nothing yet.
func (s *System) SourceStats() (stats SourceStats, ok bool) {
	if s.rsrc == nil {
		return SourceStats{}, false
	}
	return s.rsrc.Stats(), true
}
