// Package murphy is a from-scratch Go reproduction of Murphy, the
// performance-diagnosis system for distributed cloud applications presented
// at SIGCOMM 2023 (Harsh et al.). Given commonly available monitoring
// telemetry — entities, loose metadata associations, per-metric time series —
// Murphy diagnoses a problematic (entity, metric) symptom by training a
// Markov Random Field over the relationship graph online and running a
// counterfactual Gibbs-sampling-variant inference to find the entities whose
// normalization would alleviate the symptom. The diagnosis comes with a
// ranked short list of root causes and human-readable explanation chains.
//
// The package is a facade over the building blocks in internal/: the
// telemetry substrate, the relationship graph, the MRF core, the explanation
// generator, and the symptom detector. A minimal session:
//
//	db := telemetry.NewDB(600)
//	// ... add entities, associations, and metric observations ...
//	sys, err := murphy.New(db, murphy.WithSeeds("backend-vm"))
//	report, err := sys.Diagnose(telemetry.Symptom{
//		Entity: "backend-vm", Metric: telemetry.MetricCPU, High: true,
//	})
//	for _, rc := range report.Causes {
//		fmt.Println(rc.Entity, rc.Explanation)
//	}
package murphy

import (
	"context"
	"fmt"

	"murphy/internal/anomaly"
	"murphy/internal/core"
	"murphy/internal/explain"
	"murphy/internal/graph"
	"murphy/internal/resilience"
	"murphy/internal/telemetry"
)

// Config re-exports the algorithm parameters of the MRF core; the zero value
// of any field falls back to the paper's defaults.
type Config = core.Config

// DefaultConfig returns the paper's parameter choices (B=10 features, W=4
// Gibbs rounds, 5000 Monte-Carlo samples, one-week training window).
func DefaultConfig() Config { return core.DefaultConfig() }

// System is a diagnosis session bound to one monitoring database. It builds
// the relationship graph once; every Diagnose call trains the MRF online on
// the trailing window, per the paper's online-training design.
type System struct {
	db     *telemetry.DB
	g      *graph.Graph
	cfg    Config
	th     explain.Thresholds
	maxHop int
	seeds  []telemetry.EntityID
	// src is the read path used for online training; defaults to db.
	// WithSource interposes another source (e.g. a chaos injector);
	// WithRetry/WithBreaker wrap it in the resilience layer.
	src     telemetry.Source
	retry   *resilience.Policy
	brkCfg  *resilience.BreakerConfig
	breaker *resilience.Breaker
	rsrc    *resilience.Source
	workers int
	// cache, when set, carries trained factors across the Diagnose calls of
	// this System (and any other System sharing the cache).
	cache *core.FactorCache
}

// Option customizes a System.
type Option func(*System)

// WithConfig overrides the algorithm parameters.
func WithConfig(cfg Config) Option {
	return func(s *System) { s.cfg = cfg }
}

// WithSeeds sets the entities the relationship graph is grown from
// (typically the affected application's members, or the symptom entity).
// When unset, the graph covers every entity in the database.
func WithSeeds(seeds ...telemetry.EntityID) Option {
	return func(s *System) { s.seeds = seeds }
}

// WithApp seeds the relationship graph with the tagged members of an
// application, as operators do when a ticket names an affected app.
func WithApp(db *telemetry.DB, app string) Option {
	return func(s *System) { s.seeds = db.AppMembers(app) }
}

// WithMaxHops bounds the graph expansion from the seed set; negative (the
// default) expands the reachable component. The paper's incident dataset
// used four hops from the affected application.
func WithMaxHops(h int) Option {
	return func(s *System) { s.maxHop = h }
}

// WithThresholds overrides the explanation labeling thresholds.
func WithThresholds(th explain.Thresholds) Option {
	return func(s *System) { s.th = th }
}

// WithSource routes the online-training reads through src instead of the
// database directly — a chaos injector in robustness drills, or any
// external read path. Combine with WithRetry/WithBreaker to absorb the
// source's transient faults.
func WithSource(src telemetry.Source) Option {
	return func(s *System) { s.src = src }
}

// WithRetry wraps the training-window reads in a retry policy: transient
// telemetry faults (telemetry.ErrTransient) are absorbed with exponential
// backoff instead of degrading the affected series.
func WithRetry(p resilience.Policy) Option {
	return func(s *System) { s.retry = &p }
}

// WithBreaker adds a circuit breaker on the telemetry read path: a source
// failing persistently is given a cooldown (reads fail fast and degrade to
// missing data) instead of retry pressure. The breaker persists across
// Diagnose calls on this System.
func WithBreaker(cfg resilience.BreakerConfig) Option {
	return func(s *System) { s.brkCfg = &cfg }
}

// WithWorkers fans candidate evaluations out over n workers per Diagnose
// call (n <= 1 stays sequential; results are identical either way, per the
// independently seeded samplers).
func WithWorkers(n int) Option {
	return func(s *System) { s.workers = n }
}

// WithFactorCache reuses trained factors across this System's Diagnose and
// WhatIf calls: Murphy retrains its MRF online on every call, but between
// two calls at the same time slice every factor comes out identical, so an
// operator triaging several symptoms of one incident pays the ridge fits
// and feature selection only once. capacity caps the cached factor count
// (<= 0 uses the default); entries are evicted LRU. Behavior-preserving:
// rankings are bit-identical with the cache on or off. The cache is bypassed
// automatically when WithSource/WithRetry/WithBreaker interpose a fallible
// read path (see core.FactorCache for why).
func WithFactorCache(capacity int) Option {
	return func(s *System) { s.cache = core.NewFactorCache(capacity) }
}

// WithSharedFactorCache installs an existing cache, so several Systems over
// the same database (e.g. one per symptom seed set) share trained factors.
func WithSharedFactorCache(c *core.FactorCache) Option {
	return func(s *System) { s.cache = c }
}

// WithEarlyStop enables sequential significance testing at the given
// confidence (0 uses the 0.999 default): each counterfactual test draws its
// Monte-Carlo samples in batches and stops as soon as the verdict at Alpha
// is decided with margin to spare, cutting the sample budget by an order of
// magnitude for clear-cut candidates. Verdicts match the full-budget run in
// practice (the margin keeps borderline candidates sampling), but reported
// p-values come from the truncated sample. Apply after WithConfig.
func WithEarlyStop(confidence float64) Option {
	return func(s *System) {
		s.cfg.EarlyStop = true
		s.cfg.EarlyStopConfidence = confidence
	}
}

// FactorCacheStats reports the factor cache's hit/miss counters (zero-valued
// when WithFactorCache was not used).
func (s *System) FactorCacheStats() core.FactorCacheStats {
	if s.cache == nil {
		return core.FactorCacheStats{}
	}
	return s.cache.Stats()
}

// New builds a diagnosis session over a monitoring database.
func New(db *telemetry.DB, opts ...Option) (*System, error) {
	if db == nil || db.NumEntities() == 0 {
		return nil, fmt.Errorf("murphy: empty monitoring database")
	}
	s := &System{
		db:     db,
		cfg:    core.DefaultConfig(),
		th:     explain.DefaultThresholds(),
		maxHop: -1,
	}
	for _, o := range opts {
		o(s)
	}
	if len(s.seeds) == 0 {
		s.seeds = db.Entities()
	}
	g, err := graph.Build(db, s.seeds, s.maxHop)
	if err != nil {
		return nil, fmt.Errorf("murphy: build relationship graph: %w", err)
	}
	s.g = g
	if s.src == nil {
		s.src = db
	}
	if s.retry != nil || s.brkCfg != nil {
		var retry resilience.Policy
		if s.retry != nil {
			retry = *s.retry
		} else {
			retry.MaxAttempts = 1 // breaker only, no retries
		}
		if s.brkCfg != nil {
			s.breaker = resilience.NewBreaker(*s.brkCfg)
		}
		s.rsrc = resilience.NewSource(s.src, retry, s.breaker)
		s.src = s.rsrc
	}
	return s, nil
}

// SourceStats reports what the resilient read layer absorbed so far
// (zero-valued when WithRetry/WithBreaker were not used).
func (s *System) SourceStats() resilience.SourceStats {
	if s.rsrc == nil {
		return resilience.SourceStats{}
	}
	return s.rsrc.Stats()
}

// Graph exposes the relationship graph (entity count, cycles, …).
func (s *System) Graph() *graph.Graph { return s.g }

// RootCause is one diagnosed root cause with its explanation chain.
type RootCause struct {
	core.RootCause
	// Explanation is the label-respecting causal chain from this root cause
	// to the symptom entity, or empty when no chain exists.
	Explanation string
}

// Report is the result of one diagnosis.
type Report struct {
	Symptom telemetry.Symptom
	// Causes is the ranked root-cause list, most anomalous first. Fully
	// certified causes come first; when the diagnosis degraded (deadline,
	// faults, a panicking evaluation), anomaly-score-only fallback entries
	// follow, flagged with Degraded=true — a degraded guess never displaces
	// a certified cause.
	Causes []RootCause
	// Candidates is the pruned search space that was evaluated.
	Candidates []telemetry.EntityID
	// RecentChanges lists configuration changes in the training window;
	// Murphy surfaces them so the operator can catch problems caused by
	// recently spawned or reconfigured entities (§4.2 edge cases).
	RecentChanges []telemetry.Event
	// Partial is true when not every candidate was fully evaluated: the
	// ranking is valid but may be incomplete.
	Partial bool
	// Skipped lists the candidates that were not fully evaluated and why
	// (deadline exceeded, evaluator panic).
	Skipped []core.SkippedCandidate
	// ReadFailures counts telemetry reads that failed even after the
	// resilience layer's retries; the affected series were treated as
	// missing data during training.
	ReadFailures int
}

// Diagnose trains the MRF online on the trailing window and runs the full
// §4.2 inference for one symptom, then attaches explanation chains (§4.3).
func (s *System) Diagnose(symptom telemetry.Symptom) (*Report, error) {
	return s.DiagnoseContext(context.Background(), symptom)
}

// DiagnoseContext is Diagnose under cooperative cancellation, the
// operational entry point for deadline-bound diagnoses:
//
//   - A context deadline that expires mid-inference yields a *partial*
//     Report, not an error: the causes certified so far stay ranked,
//     unevaluated candidates are flagged in Skipped and fall back to
//     anomaly-score-only entries (Degraded=true) at the end of Causes.
//   - An explicitly cancelled context returns promptly with an error
//     wrapping context.Canceled.
//   - A deadline that expires during training (before inference can start)
//     returns an error: there is no model to answer with.
func (s *System) DiagnoseContext(ctx context.Context, symptom telemetry.Symptom) (*Report, error) {
	model, err := s.train(ctx)
	if err != nil {
		return nil, err
	}
	var diag *core.Diagnosis
	if s.workers > 1 {
		diag, err = model.DiagnoseParallelContext(ctx, symptom, s.workers)
	} else {
		diag, err = model.DiagnoseContext(ctx, symptom)
	}
	if err != nil {
		return nil, err
	}
	labeler := explain.NewLabeler(model, s.db, s.th)
	since := model.Now() - s.cfg.TrainWindow
	if since < 0 {
		since = 0
	}
	report := &Report{
		Symptom:       symptom,
		Candidates:    diag.Candidates,
		RecentChanges: s.db.EventsSince(since),
		Partial:       diag.Partial,
		Skipped:       diag.Skipped,
		ReadFailures:  len(model.ReadFailures()),
	}
	for _, c := range diag.Causes {
		rc := RootCause{RootCause: c}
		if chain, ok := explain.Explain(labeler, s.g, c.Entity, symptom.Entity); ok {
			rc.Explanation = chain.Render(s.db)
		}
		report.Causes = append(report.Causes, rc)
	}
	// Degraded fallbacks ride at the tail: visible, flagged, never ahead of
	// a certified cause. No explanation chains — their evaluation never ran.
	for _, c := range diag.Degraded {
		report.Causes = append(report.Causes, RootCause{RootCause: c})
	}
	return report, nil
}

// train fits the MRF through the configured read path.
func (s *System) train(ctx context.Context) (*core.Model, error) {
	opts := core.TrainOpts{Now: -1, Cache: s.cache}
	if plain, ok := s.src.(*telemetry.DB); !ok || plain != s.db {
		// An interposed source (chaos, resilience, remote): route reads
		// through it. The factor cache is bypassed on this path.
		opts.Src = s.src
	}
	return core.TrainOpt(ctx, s.db, s.g, s.cfg, opts)
}

// WhatIf answers the §7 performance-reasoning question: if the given entity
// metrics were set to these values, what would the target metric become?
// The prediction propagates the intervention through the relationship graph
// with the configured number of Gibbs rounds (deterministically); predicted
// is meaningful only when ok is true (some override can reach the target).
// The returned current value is the target's value at the diagnosis slice.
func (s *System) WhatIf(overrides map[telemetry.EntityID]map[string]float64, target telemetry.EntityID, targetMetric string) (predicted, current float64, ok bool, err error) {
	return s.WhatIfContext(context.Background(), overrides, target, targetMetric)
}

// WhatIfContext is WhatIf under cooperative cancellation (the online
// training pass honors the context; the deterministic propagation itself is
// fast and runs to completion).
func (s *System) WhatIfContext(ctx context.Context, overrides map[telemetry.EntityID]map[string]float64, target telemetry.EntityID, targetMetric string) (predicted, current float64, ok bool, err error) {
	model, err := s.train(ctx)
	if err != nil {
		return 0, 0, false, err
	}
	pred, reached := model.PredictUnderIntervention(overrides, target, targetMetric, 0)
	return pred, model.CurrentValue(target, targetMetric), reached, nil
}

// FindSymptoms scans an affected application for problematic (entity,
// metric) pairs at the latest time slice (Appendix A.1), most anomalous
// first, so a ticket that names only an application can be turned into
// concrete Diagnose calls.
func (s *System) FindSymptoms(app string) []telemetry.Symptom {
	det := anomaly.NewDetector()
	scored := det.ScanApp(s.db, app, s.db.Len()-1)
	out := make([]telemetry.Symptom, len(scored))
	for i, sc := range scored {
		out[i] = sc.Symptom
	}
	return out
}

// Top returns the first k causes of a report (or fewer).
func (r *Report) Top(k int) []RootCause {
	if k > len(r.Causes) {
		k = len(r.Causes)
	}
	return r.Causes[:k]
}
