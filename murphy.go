// Package murphy is a from-scratch Go reproduction of Murphy, the
// performance-diagnosis system for distributed cloud applications presented
// at SIGCOMM 2023 (Harsh et al.). Given commonly available monitoring
// telemetry — entities, loose metadata associations, per-metric time series —
// Murphy diagnoses a problematic (entity, metric) symptom by training a
// Markov Random Field over the relationship graph online and running a
// counterfactual Gibbs-sampling-variant inference to find the entities whose
// normalization would alleviate the symptom. The diagnosis comes with a
// ranked short list of root causes and human-readable explanation chains.
//
// The package is a facade over the building blocks in internal/: the
// telemetry substrate, the relationship graph, the MRF core, the explanation
// generator, and the symptom detector. A minimal session:
//
//	db := telemetry.NewDB(600)
//	// ... add entities, associations, and metric observations ...
//	sys, err := murphy.New(db, murphy.WithSeeds("backend-vm"))
//	report, err := sys.Diagnose(telemetry.Symptom{
//		Entity: "backend-vm", Metric: telemetry.MetricCPU, High: true,
//	})
//	for _, rc := range report.Causes {
//		fmt.Println(rc.Entity, rc.Explanation)
//	}
package murphy

import (
	"fmt"

	"murphy/internal/anomaly"
	"murphy/internal/core"
	"murphy/internal/explain"
	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// Config re-exports the algorithm parameters of the MRF core; the zero value
// of any field falls back to the paper's defaults.
type Config = core.Config

// DefaultConfig returns the paper's parameter choices (B=10 features, W=4
// Gibbs rounds, 5000 Monte-Carlo samples, one-week training window).
func DefaultConfig() Config { return core.DefaultConfig() }

// System is a diagnosis session bound to one monitoring database. It builds
// the relationship graph once; every Diagnose call trains the MRF online on
// the trailing window, per the paper's online-training design.
type System struct {
	db     *telemetry.DB
	g      *graph.Graph
	cfg    Config
	th     explain.Thresholds
	maxHop int
	seeds  []telemetry.EntityID
}

// Option customizes a System.
type Option func(*System)

// WithConfig overrides the algorithm parameters.
func WithConfig(cfg Config) Option {
	return func(s *System) { s.cfg = cfg }
}

// WithSeeds sets the entities the relationship graph is grown from
// (typically the affected application's members, or the symptom entity).
// When unset, the graph covers every entity in the database.
func WithSeeds(seeds ...telemetry.EntityID) Option {
	return func(s *System) { s.seeds = seeds }
}

// WithApp seeds the relationship graph with the tagged members of an
// application, as operators do when a ticket names an affected app.
func WithApp(db *telemetry.DB, app string) Option {
	return func(s *System) { s.seeds = db.AppMembers(app) }
}

// WithMaxHops bounds the graph expansion from the seed set; negative (the
// default) expands the reachable component. The paper's incident dataset
// used four hops from the affected application.
func WithMaxHops(h int) Option {
	return func(s *System) { s.maxHop = h }
}

// WithThresholds overrides the explanation labeling thresholds.
func WithThresholds(th explain.Thresholds) Option {
	return func(s *System) { s.th = th }
}

// New builds a diagnosis session over a monitoring database.
func New(db *telemetry.DB, opts ...Option) (*System, error) {
	if db == nil || db.NumEntities() == 0 {
		return nil, fmt.Errorf("murphy: empty monitoring database")
	}
	s := &System{
		db:     db,
		cfg:    core.DefaultConfig(),
		th:     explain.DefaultThresholds(),
		maxHop: -1,
	}
	for _, o := range opts {
		o(s)
	}
	if len(s.seeds) == 0 {
		s.seeds = db.Entities()
	}
	g, err := graph.Build(db, s.seeds, s.maxHop)
	if err != nil {
		return nil, fmt.Errorf("murphy: build relationship graph: %w", err)
	}
	s.g = g
	return s, nil
}

// Graph exposes the relationship graph (entity count, cycles, …).
func (s *System) Graph() *graph.Graph { return s.g }

// RootCause is one diagnosed root cause with its explanation chain.
type RootCause struct {
	core.RootCause
	// Explanation is the label-respecting causal chain from this root cause
	// to the symptom entity, or empty when no chain exists.
	Explanation string
}

// Report is the result of one diagnosis.
type Report struct {
	Symptom telemetry.Symptom
	// Causes is the ranked root-cause list, most anomalous first.
	Causes []RootCause
	// Candidates is the pruned search space that was evaluated.
	Candidates []telemetry.EntityID
	// RecentChanges lists configuration changes in the training window;
	// Murphy surfaces them so the operator can catch problems caused by
	// recently spawned or reconfigured entities (§4.2 edge cases).
	RecentChanges []telemetry.Event
}

// Diagnose trains the MRF online on the trailing window and runs the full
// §4.2 inference for one symptom, then attaches explanation chains (§4.3).
func (s *System) Diagnose(symptom telemetry.Symptom) (*Report, error) {
	model, err := core.Train(s.db, s.g, s.cfg)
	if err != nil {
		return nil, err
	}
	diag, err := model.Diagnose(symptom)
	if err != nil {
		return nil, err
	}
	labeler := explain.NewLabeler(model, s.db, s.th)
	since := model.Now() - s.cfg.TrainWindow
	if since < 0 {
		since = 0
	}
	report := &Report{
		Symptom:       symptom,
		Candidates:    diag.Candidates,
		RecentChanges: s.db.EventsSince(since),
	}
	for _, c := range diag.Causes {
		rc := RootCause{RootCause: c}
		if chain, ok := explain.Explain(labeler, s.g, c.Entity, symptom.Entity); ok {
			rc.Explanation = chain.Render(s.db)
		}
		report.Causes = append(report.Causes, rc)
	}
	return report, nil
}

// WhatIf answers the §7 performance-reasoning question: if the given entity
// metrics were set to these values, what would the target metric become?
// The prediction propagates the intervention through the relationship graph
// with the configured number of Gibbs rounds (deterministically); predicted
// is meaningful only when ok is true (some override can reach the target).
// The returned current value is the target's value at the diagnosis slice.
func (s *System) WhatIf(overrides map[telemetry.EntityID]map[string]float64, target telemetry.EntityID, targetMetric string) (predicted, current float64, ok bool, err error) {
	model, err := core.Train(s.db, s.g, s.cfg)
	if err != nil {
		return 0, 0, false, err
	}
	pred, reached := model.PredictUnderIntervention(overrides, target, targetMetric, 0)
	return pred, model.CurrentValue(target, targetMetric), reached, nil
}

// FindSymptoms scans an affected application for problematic (entity,
// metric) pairs at the latest time slice (Appendix A.1), most anomalous
// first, so a ticket that names only an application can be turned into
// concrete Diagnose calls.
func (s *System) FindSymptoms(app string) []telemetry.Symptom {
	det := anomaly.NewDetector()
	scored := det.ScanApp(s.db, app, s.db.Len()-1)
	out := make([]telemetry.Symptom, len(scored))
	for i, sc := range scored {
		out[i] = sc.Symptom
	}
	return out
}

// Top returns the first k causes of a report (or fewer).
func (r *Report) Top(k int) []RootCause {
	if k > len(r.Causes) {
		k = len(r.Causes)
	}
	return r.Causes[:k]
}
