package murphy

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"murphy/internal/telemetry"
)

// sameReport asserts two reports rank the same causes with bit-identical
// verdicts.
func sameReport(t *testing.T, label string, want, got *Report) {
	t.Helper()
	if len(want.Causes) != len(got.Causes) {
		t.Fatalf("%s: %d causes vs %d", label, len(got.Causes), len(want.Causes))
	}
	for i := range want.Causes {
		w, g := want.Causes[i], got.Causes[i]
		if w.Entity != g.Entity ||
			math.Float64bits(w.Score) != math.Float64bits(g.Score) ||
			math.Float64bits(w.PValue) != math.Float64bits(g.PValue) ||
			math.Float64bits(w.Effect) != math.Float64bits(g.Effect) {
			t.Fatalf("%s: cause %d differs: %+v vs %+v", label, i, g, w)
		}
	}
}

// TestDiagnoseBatchMatchesSequential verifies the batch facade returns exactly
// what per-symptom DiagnoseContext calls would, for every item.
func TestDiagnoseBatchMatchesSequential(t *testing.T) {
	symptoms := []telemetry.Symptom{
		{Entity: "backend", Metric: telemetry.MetricCPU, High: true},
		{Entity: "web", Metric: telemetry.MetricCPU, High: true},
	}
	seq := testSystem(t)
	var want []*Report
	for _, sym := range symptoms {
		r, err := seq.DiagnoseContext(context.Background(), sym)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	batch := testSystem(t)
	items, err := batch.DiagnoseBatch(context.Background(), symptoms)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(symptoms) {
		t.Fatalf("%d items for %d symptoms", len(items), len(symptoms))
	}
	for i, item := range items {
		if item.Symptom != symptoms[i] {
			t.Fatalf("item %d echoes %+v", i, item.Symptom)
		}
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		sameReport(t, "batch item", want[i], item.Report)
	}
}

// TestDiagnoseBatchPartialErrors is the error-isolation table: every kind of
// per-item failure, at every position in the batch, must land in that item's
// Err while the sibling symptoms still produce reports bit-identical to what
// sequential DiagnoseContext calls return.
func TestDiagnoseBatchPartialErrors(t *testing.T) {
	good := []telemetry.Symptom{
		{Entity: "backend", Metric: telemetry.MetricCPU, High: true},
		{Entity: "web", Metric: telemetry.MetricCPU, High: true},
	}
	seq := testSystem(t)
	want := make([]*Report, len(good))
	for i, sym := range good {
		r, err := seq.DiagnoseContext(context.Background(), sym)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	bad := []struct {
		name    string
		symptom telemetry.Symptom
		errSub  string
	}{
		{
			name:    "unknown entity",
			symptom: telemetry.Symptom{Entity: "ghost", Metric: telemetry.MetricCPU, High: true},
			errSub:  "not in relationship graph",
		},
		{
			name:    "known entity without the symptom metric",
			symptom: telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricPktDrops, High: true},
			errSub:  "no telemetry for symptom metric",
		},
	}
	for _, tc := range bad {
		for pos := 0; pos <= len(good); pos++ {
			t.Run(fmt.Sprintf("%s at %d", tc.name, pos), func(t *testing.T) {
				symptoms := append(append([]telemetry.Symptom{}, good[:pos]...), tc.symptom)
				symptoms = append(symptoms, good[pos:]...)
				items, err := testSystem(t).DiagnoseBatch(context.Background(), symptoms)
				if err != nil {
					t.Fatalf("batch aborted instead of isolating the bad item: %v", err)
				}
				if len(items) != len(symptoms) {
					t.Fatalf("%d items for %d symptoms", len(items), len(symptoms))
				}
				gi := 0
				for i, item := range items {
					if item.Symptom != symptoms[i] {
						t.Fatalf("item %d echoes %+v, want %+v", i, item.Symptom, symptoms[i])
					}
					if i == pos {
						if item.Err == nil || item.Report != nil {
							t.Fatalf("bad item: err=%v report=%v", item.Err, item.Report)
						}
						if !strings.Contains(item.Err.Error(), tc.errSub) {
							t.Fatalf("bad item error %q does not mention %q", item.Err, tc.errSub)
						}
						continue
					}
					if item.Err != nil || item.Report == nil {
						t.Fatalf("sibling %d sunk by the bad item: %v", i, item.Err)
					}
					sameReport(t, "sibling report", want[gi], item.Report)
					gi++
				}
			})
		}
	}
}

// TestDiagnoseBatchEmpty pins the no-op contract.
func TestDiagnoseBatchEmpty(t *testing.T) {
	sys := testSystem(t)
	items, err := sys.DiagnoseBatch(context.Background(), nil)
	if err != nil || items != nil {
		t.Fatalf("empty batch: items=%v err=%v", items, err)
	}
}

// TestDiagnoseBatchCancelled verifies a cancelled context surfaces per item
// once training is already paid for, and as a top-level error before.
func TestDiagnoseBatchCancelled(t *testing.T) {
	sys := testSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.DiagnoseBatch(ctx, []telemetry.Symptom{demoSymptom()}); err == nil {
		t.Fatal("cancelled context should fail the batch")
	}
}

// TestWithParallelTrainingMatchesSerial is the facade-level determinism check:
// WithParallelTraining and WithChains must leave single-chain verdicts
// bit-identical and multi-chain rankings intact.
func TestWithParallelTrainingMatchesSerial(t *testing.T) {
	want, err := testSystem(t).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	got, err := testSystem(t, WithParallelTraining(4)).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "parallel training", want, got)

	chained, err := testSystem(t, WithParallelTraining(4), WithChains(4)).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	if len(chained.Causes) != len(want.Causes) {
		t.Fatalf("chains=4: %d causes vs %d", len(chained.Causes), len(want.Causes))
	}
	for i := range want.Causes {
		if chained.Causes[i].Entity != want.Causes[i].Entity {
			t.Fatalf("chains=4: rank %d is %s, want %s", i, chained.Causes[i].Entity, want.Causes[i].Entity)
		}
	}
}

// TestWithWorkersZeroClamped verifies WithWorkers(0) degrades to the serial
// path instead of panicking or spawning an unbounded pool.
func TestWithWorkersZeroClamped(t *testing.T) {
	want, err := testSystem(t).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	got, err := testSystem(t, WithWorkers(0)).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "workers=0", want, got)
}
