package murphy

import (
	"context"
	"math"
	"testing"

	"murphy/internal/telemetry"
)

// sameReport asserts two reports rank the same causes with bit-identical
// verdicts.
func sameReport(t *testing.T, label string, want, got *Report) {
	t.Helper()
	if len(want.Causes) != len(got.Causes) {
		t.Fatalf("%s: %d causes vs %d", label, len(got.Causes), len(want.Causes))
	}
	for i := range want.Causes {
		w, g := want.Causes[i], got.Causes[i]
		if w.Entity != g.Entity ||
			math.Float64bits(w.Score) != math.Float64bits(g.Score) ||
			math.Float64bits(w.PValue) != math.Float64bits(g.PValue) ||
			math.Float64bits(w.Effect) != math.Float64bits(g.Effect) {
			t.Fatalf("%s: cause %d differs: %+v vs %+v", label, i, g, w)
		}
	}
}

// TestDiagnoseBatchMatchesSequential verifies the batch facade returns exactly
// what per-symptom DiagnoseContext calls would, for every item.
func TestDiagnoseBatchMatchesSequential(t *testing.T) {
	symptoms := []telemetry.Symptom{
		{Entity: "backend", Metric: telemetry.MetricCPU, High: true},
		{Entity: "web", Metric: telemetry.MetricCPU, High: true},
	}
	seq := testSystem(t)
	var want []*Report
	for _, sym := range symptoms {
		r, err := seq.DiagnoseContext(context.Background(), sym)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	batch := testSystem(t)
	items, err := batch.DiagnoseBatch(context.Background(), symptoms)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(symptoms) {
		t.Fatalf("%d items for %d symptoms", len(items), len(symptoms))
	}
	for i, item := range items {
		if item.Symptom != symptoms[i] {
			t.Fatalf("item %d echoes %+v", i, item.Symptom)
		}
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		sameReport(t, "batch item", want[i], item.Report)
	}
}

// TestDiagnoseBatchPartialErrors verifies one bad symptom does not sink the
// batch: it gets a per-item error, the others still produce reports.
func TestDiagnoseBatchPartialErrors(t *testing.T) {
	sys := testSystem(t)
	items, err := sys.DiagnoseBatch(context.Background(), []telemetry.Symptom{
		demoSymptom(),
		{Entity: "ghost", Metric: telemetry.MetricCPU, High: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil || items[0].Report == nil {
		t.Fatalf("good symptom failed: %v", items[0].Err)
	}
	if items[1].Err == nil {
		t.Fatal("unknown symptom entity should yield a per-item error")
	}
}

// TestDiagnoseBatchEmpty pins the no-op contract.
func TestDiagnoseBatchEmpty(t *testing.T) {
	sys := testSystem(t)
	items, err := sys.DiagnoseBatch(context.Background(), nil)
	if err != nil || items != nil {
		t.Fatalf("empty batch: items=%v err=%v", items, err)
	}
}

// TestDiagnoseBatchCancelled verifies a cancelled context surfaces per item
// once training is already paid for, and as a top-level error before.
func TestDiagnoseBatchCancelled(t *testing.T) {
	sys := testSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.DiagnoseBatch(ctx, []telemetry.Symptom{demoSymptom()}); err == nil {
		t.Fatal("cancelled context should fail the batch")
	}
}

// TestWithParallelTrainingMatchesSerial is the facade-level determinism check:
// WithParallelTraining and WithChains must leave single-chain verdicts
// bit-identical and multi-chain rankings intact.
func TestWithParallelTrainingMatchesSerial(t *testing.T) {
	want, err := testSystem(t).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	got, err := testSystem(t, WithParallelTraining(4)).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "parallel training", want, got)

	chained, err := testSystem(t, WithParallelTraining(4), WithChains(4)).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	if len(chained.Causes) != len(want.Causes) {
		t.Fatalf("chains=4: %d causes vs %d", len(chained.Causes), len(want.Causes))
	}
	for i := range want.Causes {
		if chained.Causes[i].Entity != want.Causes[i].Entity {
			t.Fatalf("chains=4: rank %d is %s, want %s", i, chained.Causes[i].Entity, want.Causes[i].Entity)
		}
	}
}

// TestWithWorkersZeroClamped verifies WithWorkers(0) degrades to the serial
// path instead of panicking or spawning an unbounded pool.
func TestWithWorkersZeroClamped(t *testing.T) {
	want, err := testSystem(t).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	got, err := testSystem(t, WithWorkers(0)).Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "workers=0", want, got)
}
