package murphy

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"murphy/internal/chaos"
	"murphy/internal/resilience"
	"murphy/internal/telemetry"
)

// demoDB builds a crawler-style incident: a client VM drives a heavy-hitter
// flow into a web VM whose load propagates to a backend VM.
func demoDB(t *testing.T) *telemetry.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	db := telemetry.NewDB(600)
	for _, e := range []*telemetry.Entity{
		{ID: "crawler", Type: telemetry.TypeVM, Name: "crawler", App: "shop"},
		{ID: "flow", Type: telemetry.TypeFlow, Name: "crawler->web", App: "shop"},
		{ID: "web", Type: telemetry.TypeVM, Name: "web", App: "shop", Tier: "web"},
		{ID: "backend", Type: telemetry.TypeVM, Name: "backend", App: "shop", Tier: "db"},
	} {
		if err := db.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]telemetry.EntityID{{"crawler", "flow"}, {"flow", "web"}, {"web", "backend"}} {
		if err := db.Associate(p[0], p[1], telemetry.Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	total := 240
	for tt := 0; tt < total; tt++ {
		load := 40 + 8*math.Sin(float64(tt)/15) + rng.NormFloat64()*2
		if tt >= total-6 {
			load += 300
		}
		obs := func(id telemetry.EntityID, m string, v float64) {
			t.Helper()
			if err := db.Observe(id, m, tt, v); err != nil {
				t.Fatal(err)
			}
		}
		obs("crawler", telemetry.MetricNetTx, load*10+rng.NormFloat64())
		obs("flow", telemetry.MetricSessions, load+rng.NormFloat64())
		obs("flow", telemetry.MetricThroughput, load*1500+rng.NormFloat64()*100)
		obs("web", telemetry.MetricCPU, 0.1+load*0.001+rng.NormFloat64()*0.005)
		obs("backend", telemetry.MetricCPU, 0.12+load*0.0015+rng.NormFloat64()*0.005)
	}
	return db
}

func testSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Samples = 300
	cfg.TrainWindow = 220
	sys, err := New(demoDB(t), append([]Option{WithConfig(cfg)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil db should error")
	}
	if _, err := New(telemetry.NewDB(60)); err == nil {
		t.Fatal("empty db should error")
	}
	db := demoDB(t)
	if _, err := New(db, WithSeeds("ghost")); err == nil {
		t.Fatal("unknown seed should error")
	}
}

func TestDiagnoseEndToEnd(t *testing.T) {
	sys := testSystem(t)
	report, err := sys.Diagnose(telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Causes) == 0 {
		t.Fatal("no causes found")
	}
	// The crawler-side entities must be implicated.
	hit := false
	for _, c := range report.Top(5) {
		if c.Entity == "crawler" || c.Entity == "flow" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("crawler/flow should be in the top causes: %+v", report.Causes)
	}
	// At least one cause carries an explanation chain ending at the symptom.
	explained := false
	for _, c := range report.Causes {
		if c.Explanation != "" {
			explained = true
			if !strings.Contains(c.Explanation, "backend") {
				t.Fatalf("explanation should reach the symptom entity: %s", c.Explanation)
			}
		}
	}
	if !explained {
		t.Fatal("expected at least one explanation chain")
	}
}

func TestWithAppAndMaxHops(t *testing.T) {
	db := demoDB(t)
	sys, err := New(db, WithApp(db, "shop"), WithMaxHops(1))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Graph().Len() == 0 {
		t.Fatal("graph should be non-empty")
	}
}

func TestFindSymptoms(t *testing.T) {
	sys := testSystem(t)
	symptoms := sys.FindSymptoms("shop")
	if len(symptoms) == 0 {
		t.Fatal("incident should surface symptoms")
	}
	// The most anomalous symptoms should be high-direction spikes.
	if !symptoms[0].High {
		t.Fatalf("expected high symptom first, got %+v", symptoms[0])
	}
	if len(sys.FindSymptoms("no-such-app")) != 0 {
		t.Fatal("unknown app should yield no symptoms")
	}
}

func TestTopClamps(t *testing.T) {
	r := &Report{Causes: []RootCause{{}, {}}}
	if len(r.Top(10)) != 2 || len(r.Top(1)) != 1 {
		t.Fatal("Top should clamp")
	}
}

func TestWhatIf(t *testing.T) {
	sys := testSystem(t)
	cur := func() float64 {
		db := demoDB(t)
		return db.At("backend", telemetry.MetricCPU, db.Len()-1)
	}()
	// Halving the flow's load should lower the predicted backend CPU.
	overrides := map[telemetry.EntityID]map[string]float64{
		"flow": {telemetry.MetricThroughput: 30000, telemetry.MetricSessions: 20},
	}
	pred, current, ok, err := sys.WhatIf(overrides, "backend", telemetry.MetricCPU)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("flow should reach backend")
	}
	if math.Abs(current-cur) > 1e-9 {
		t.Fatalf("current = %v, want the diagnosis-slice value %v", current, cur)
	}
	if pred >= current {
		t.Fatalf("reducing load should lower the prediction: %v -> %v", current, pred)
	}
	// An unreachable target reports !ok.
	dbx := demoDB(t)
	if err := dbx.AddEntity(&telemetry.Entity{ID: "island", Type: telemetry.TypeVM, Name: "i"}); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 240; tt++ {
		if err := dbx.Observe("island", telemetry.MetricCPU, tt, 1); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	cfg.Samples = 200
	cfg.TrainWindow = 200
	sys2, err := New(dbx, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := sys2.WhatIf(overrides, "island", telemetry.MetricCPU); err != nil || ok {
		t.Fatalf("unreachable target should report !ok: ok=%v err=%v", ok, err)
	}
}

func demoSymptom() telemetry.Symptom {
	return telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true}
}

func TestDiagnoseContextCancelled(t *testing.T) {
	sys := testSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := sys.DiagnoseContext(ctx, demoSymptom())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled diagnosis took %v, want prompt return", elapsed)
	}
}

func TestDiagnoseContextDeadlinePartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Samples = 60000
	cfg.GibbsRounds = 8
	cfg.TrainWindow = 220
	sys, err := New(demoDB(t), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	report, err := sys.DiagnoseContext(ctx, demoSymptom())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline should degrade, not error: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bound diagnosis took %v", elapsed)
	}
	if !report.Partial || len(report.Skipped) == 0 {
		t.Fatalf("report should be flagged partial with skipped candidates: partial=%v skipped=%d",
			report.Partial, len(report.Skipped))
	}
	// Degraded fallbacks appear in the ranking, flagged, after any certified
	// causes.
	sawDegraded := false
	for i, c := range report.Causes {
		if c.Degraded {
			sawDegraded = true
		} else if sawDegraded {
			t.Fatalf("certified cause %s at %d after a degraded one", c.Entity, i)
		}
	}
	if !sawDegraded {
		t.Fatal("skipped candidates should surface as degraded causes")
	}
}

func TestWithWorkersMatchesSequential(t *testing.T) {
	symptom := demoSymptom()
	seq, err := testSystem(t).Diagnose(symptom)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testSystem(t, WithWorkers(4)).Diagnose(symptom)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Causes) != len(par.Causes) {
		t.Fatalf("worker fan-out changed the result: %d vs %d causes", len(seq.Causes), len(par.Causes))
	}
	for i := range seq.Causes {
		if seq.Causes[i].Entity != par.Causes[i].Entity {
			t.Fatalf("cause %d differs: %s vs %s", i, seq.Causes[i].Entity, par.Causes[i].Entity)
		}
		if math.Abs(seq.Causes[i].Score-par.Causes[i].Score) > 1e-12 {
			t.Fatalf("cause %d score differs: %v vs %v", i, seq.Causes[i].Score, par.Causes[i].Score)
		}
	}
}

func TestWithSourceRetryAbsorbsChaos(t *testing.T) {
	db := demoDB(t)
	inj := chaos.Wrap(db, chaos.Config{Seed: 11, FaultRate: 0.2})
	cfg := DefaultConfig()
	cfg.Samples = 300
	cfg.TrainWindow = 220
	sys, err := New(db, WithConfig(cfg),
		WithSource(inj),
		WithRetry(resilience.Policy{MaxAttempts: 6, Seed: 3}.
			WithSleep(func(context.Context, time.Duration) error { return nil })))
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Causes) == 0 {
		t.Fatal("no causes under chaos")
	}
	hit := false
	for _, c := range report.Top(5) {
		if c.Entity == "crawler" || c.Entity == "flow" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("crawler/flow should survive chaos in the top causes: %+v", report.Causes)
	}
	st, ok := sys.SourceStats()
	if !ok {
		t.Fatal("SourceStats should report the resilient layer as configured")
	}
	if st.Retried == 0 {
		t.Fatalf("retry layer absorbed nothing: %+v (injector %+v)", st, inj.Stats())
	}
	if report.ReadFailures != 0 && st.Failed == 0 {
		t.Fatalf("read failures without failed reads: report=%d stats=%+v", report.ReadFailures, st)
	}
}

func TestWithBreakerDegradesDeadSource(t *testing.T) {
	db := demoDB(t)
	inj := chaos.Wrap(db, chaos.Config{Seed: 7, FaultRate: 1.0})
	cfg := DefaultConfig()
	cfg.Samples = 200
	cfg.TrainWindow = 220
	sys, err := New(db, WithConfig(cfg),
		WithSource(inj),
		WithBreaker(resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.Diagnose(demoSymptom())
	if err != nil {
		t.Fatalf("a dead source should degrade to missing data, not error: %v", err)
	}
	if report.ReadFailures == 0 {
		t.Fatal("every read failed; the report should say so")
	}
	st, ok := sys.SourceStats()
	if !ok {
		t.Fatal("SourceStats should report the resilient layer as configured")
	}
	if st.Rejected == 0 {
		t.Fatalf("breaker never opened: %+v", st)
	}
}

func TestWhatIfContextCancelled(t *testing.T) {
	sys := testSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := sys.WhatIfContext(ctx, nil, "backend", telemetry.MetricCPU); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestReportRecentChanges(t *testing.T) {
	db := demoDB(t)
	if err := db.RecordEvent(telemetry.Event{Slice: 235, Kind: telemetry.EventScaled, Entity: "web", Detail: "replicas 2 -> 1"}); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordEvent(telemetry.Event{Slice: 2, Kind: telemetry.EventEntityCreated, Entity: "web", Detail: "ancient"}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Samples = 200
	cfg.TrainWindow = 100
	sys, err := New(db, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.Diagnose(telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.RecentChanges) != 1 || report.RecentChanges[0].Detail != "replicas 2 -> 1" {
		t.Fatalf("RecentChanges = %+v, want only the in-window event", report.RecentChanges)
	}
}
