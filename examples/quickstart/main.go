// Quickstart: build a small monitoring database by hand, inject a
// heavy-hitter incident, and ask Murphy what caused the backend's CPU spike.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"murphy"
	"murphy/internal/telemetry"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	db := telemetry.NewDB(600) // 10-minute slices, as in the enterprise platform

	// Entities: a client VM, the TCP flow it opens, a web VM, a backend VM.
	entities := []*telemetry.Entity{
		{ID: "client", Type: telemetry.TypeVM, Name: "crawler-vm", App: "shop"},
		{ID: "flow", Type: telemetry.TypeFlow, Name: "crawler->web", App: "shop"},
		{ID: "web", Type: telemetry.TypeVM, Name: "web-vm", App: "shop", Tier: "web"},
		{ID: "backend", Type: telemetry.TypeVM, Name: "db-vm", App: "shop", Tier: "db"},
	}
	for _, e := range entities {
		if err := db.AddEntity(e); err != nil {
			log.Fatal(err)
		}
	}
	// Loose metadata associations, added bidirectionally (§4.1): the
	// platform knows these entities are related but not who causes whom.
	for _, pair := range [][2]telemetry.EntityID{
		{"client", "flow"}, {"flow", "web"}, {"web", "backend"},
	} {
		if err := db.Associate(pair[0], pair[1], telemetry.Bidirectional); err != nil {
			log.Fatal(err)
		}
	}

	// One week of history at a few hundred points; the crawler goes rogue
	// in the final hour.
	const total = 260
	for t := 0; t < total; t++ {
		load := 50 + 10*math.Sin(float64(t)/20) + rng.NormFloat64()*2
		if t >= total-6 {
			load += 400 // the incident
		}
		observe(db, "client", telemetry.MetricNetTx, t, load*12+rng.NormFloat64())
		observe(db, "flow", telemetry.MetricSessions, t, load+rng.NormFloat64())
		observe(db, "flow", telemetry.MetricThroughput, t, load*1500+rng.NormFloat64()*50)
		observe(db, "web", telemetry.MetricCPU, t, 0.10+load*0.0009+rng.NormFloat64()*0.004)
		observe(db, "backend", telemetry.MetricCPU, t, 0.12+load*0.0014+rng.NormFloat64()*0.004)
	}

	sys, err := murphy.New(db, murphy.WithApp(db, "shop"))
	if err != nil {
		log.Fatal(err)
	}

	// A ticket only says "shop is slow" — find the problematic symptoms.
	symptoms := sys.FindSymptoms("shop")
	fmt.Printf("detected %d problematic symptoms\n", len(symptoms))

	sym := telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true}
	report, err := sys.Diagnose(sym)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiagnosis for %s:\n", sym)
	for i, rc := range report.Top(3) {
		fmt.Printf("%d. %s (anomaly %.1f, p=%.4f, effect %.2f)\n",
			i+1, db.Entity(rc.Entity), rc.Score, rc.PValue, rc.Effect)
		if rc.Explanation != "" {
			fmt.Printf("   %s\n", rc.Explanation)
		}
	}
}

func observe(db *telemetry.DB, id telemetry.EntityID, metric string, t int, v float64) {
	if err := db.Observe(id, metric, t, v); err != nil {
		log.Fatal(err)
	}
}
