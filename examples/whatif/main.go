// Whatif demonstrates the §7 performance-reasoning extension: Murphy's
// counterfactual framework answers capacity questions — "what would the
// backend's CPU be if the crawler's request rate were halved?" — by
// intervening on the relationship graph and propagating through the learned
// MRF factors.
//
// Run with: go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"murphy"
	"murphy/internal/enterprise"
	"murphy/internal/telemetry"
)

func main() {
	gen := enterprise.DefaultGenOptions()
	gen.Apps = 8
	gen.Hosts = 8
	gen.Steps = 320
	env, inc, err := enterprise.RunIncident(gen, enterprise.ByIndex(2))
	if err != nil {
		log.Fatal(err)
	}
	db := env.DB
	appName := env.AppNames()[inc.AppIx]
	sys, err := murphy.New(db, murphy.WithApp(db, appName), murphy.WithMaxHops(4))
	if err != nil {
		log.Fatal(err)
	}

	flow := env.ClientFlow(inc.AppIx)
	webVM := env.WebVM(inc.AppIx)
	backend := inc.Symptom.Entity
	curThr := db.At(flow, telemetry.MetricThroughput, db.Len()-1)

	fmt.Printf("during incident %d (%s):\n", inc.Index, inc.Name)
	fmt.Printf("  crawler flow throughput now: %.0f bytes/slice\n\n", curThr)

	ask := func(target telemetry.EntityID, label string, factor float64) {
		overrides := map[telemetry.EntityID]map[string]float64{
			flow: {
				telemetry.MetricThroughput: curThr * factor,
				telemetry.MetricSessions:   db.At(flow, telemetry.MetricSessions, db.Len()-1) * factor,
			},
		}
		pred, cur, ok, err := sys.WhatIf(overrides, target, telemetry.MetricCPU)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatalf("flow cannot reach %s in the graph", target)
		}
		fmt.Printf("  flow at %3.0f%% load -> %s CPU %.2f => %.2f\n", factor*100, label, cur, pred)
	}
	fmt.Println("what-if on the adjacent web VM (direct dependency):")
	for _, f := range []float64{1.0, 0.5, 0.125} {
		ask(webVM, "web VM", f)
	}
	fmt.Println("\nripple further down the chain (attenuates with graph distance,")
	fmt.Println("as off-path entities are deliberately held at observed values):")
	for _, f := range []float64{1.0, 0.125} {
		ask(backend, "backend VM", f)
	}
}
