// Interference reproduces the headline §6.1 scenario end-to-end: two clients
// hit two different API endpoints of the hotel-reservation application whose
// call trees share downstream services; client A floods its endpoint, the
// shared services saturate, and client B's latency spikes. Murphy must
// implicate client A — an entity outside the victim's call tree, reachable
// only through the cyclic relationship graph.
//
// Run with: go run ./examples/interference
package main

import (
	"fmt"
	"log"

	"murphy"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

func main() {
	opts := microsim.DefaultInterferenceOptions()
	opts.Steps = 320
	sc, err := microsim.Interference(opts)
	if err != nil {
		log.Fatal(err)
	}
	db := sc.Result.DB
	fmt.Printf("emulated %s: %d entities, %d time slices\n",
		sc.Name, db.NumEntities(), db.Len())
	fmt.Printf("symptom:     %s\n", sc.Symptom)
	fmt.Printf("true cause:  %s (the aggressor client)\n\n", db.Entity(sc.TruthEntity))

	cfg := murphy.DefaultConfig()
	cfg.Samples = 1000
	cfg.TrainWindow = 280
	sys, err := murphy.New(db,
		murphy.WithConfig(cfg),
		murphy.WithSeeds(sc.Symptom.Entity))
	if err != nil {
		log.Fatal(err)
	}
	g := sys.Graph()
	fmt.Printf("relationship graph: %d nodes, %d edges, %d 2-cycles, %d 3-cycles\n\n",
		g.Len(), g.NumEdges(), g.CountCycles2(), g.CountCycles3())

	report, err := sys.Diagnose(sc.Symptom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Murphy's ranked root causes:")
	hitAt := -1
	for i, rc := range report.Top(5) {
		marker := "  "
		if rc.Entity == sc.TruthEntity || rc.Entity == sc.Result.FlowEntity["clientA"] {
			marker = "=>"
			if hitAt < 0 {
				hitAt = i + 1
			}
		}
		fmt.Printf("%s %d. %-45s anomaly=%.1f effect=%.2f\n",
			marker, i+1, db.Entity(rc.Entity), rc.Score, rc.Effect)
	}
	if hitAt > 0 {
		fmt.Printf("\naggressor found at rank %d — an entity Sage's call-graph DAG cannot even represent.\n", hitAt)
	} else {
		fmt.Println("\naggressor not in the top 5 this run (see the relaxed criteria of §6.1).")
	}

	// Show what the victim's own call tree looks like to a DAG-only tool.
	inDAG := map[telemetry.EntityID]bool{}
	for _, e := range sc.CallDAG {
		inDAG[e[0]] = true
		inDAG[e[1]] = true
	}
	fmt.Printf("victim call-tree DAG covers %d entities; aggressor inside it: %v\n",
		len(inDAG), inDAG[sc.TruthEntity])
}
