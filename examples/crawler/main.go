// Crawler replays the production incident of the paper's Figure 1 in the
// enterprise emulation: a crawler VM floods the front end, the front end
// fans out to the backend, and the backend VM's CPU saturates. Murphy builds
// the relationship graph around the affected application, diagnoses the high
// backend CPU, and prints the explanation chain tying the heavy-hitter flow
// back to the symptom.
//
// Run with: go run ./examples/crawler
package main

import (
	"fmt"
	"log"

	"murphy"
	"murphy/internal/enterprise"
)

func main() {
	gen := enterprise.DefaultGenOptions()
	gen.Apps = 8
	gen.Hosts = 8
	gen.Steps = 320
	env, inc, err := enterprise.RunIncident(gen, enterprise.ByIndex(2))
	if err != nil {
		log.Fatal(err)
	}
	db := env.DB
	fmt.Printf("incident %d: %s\n", inc.Index, inc.Name)
	fmt.Printf("environment: %d entities across %d applications\n", db.NumEntities(), len(env.AppNames()))
	fmt.Printf("symptom:      %s\n", inc.Symptom)
	fmt.Printf("ground truth: %v\n\n", inc.Truth)

	cfg := murphy.DefaultConfig()
	cfg.Samples = 1000
	cfg.TrainWindow = 280
	appName := env.AppNames()[inc.AppIx]
	sys, err := murphy.New(db,
		murphy.WithConfig(cfg),
		murphy.WithApp(db, appName),
		murphy.WithMaxHops(4))
	if err != nil {
		log.Fatal(err)
	}
	g := sys.Graph()
	fmt.Printf("relationship graph (4 hops from app %s): %d entities, %d edges, %d 2-cycles, %d 3-cycles\n\n",
		appName, g.Len(), g.NumEdges(), g.CountCycles2(), g.CountCycles3())

	report, err := sys.Diagnose(inc.Symptom)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[string]bool{}
	for _, id := range inc.Truth {
		truth[string(id)] = true
	}
	fmt.Println("Murphy's ranked root causes:")
	for i, rc := range report.Top(5) {
		marker := "  "
		if truth[string(rc.Entity)] {
			marker = "=>"
		}
		fmt.Printf("%s %d. %-40s anomaly=%.1f effect=%.2f\n",
			marker, i+1, db.Entity(rc.Entity), rc.Score, rc.Effect)
		if rc.Explanation != "" {
			fmt.Printf("     chain: %s\n", rc.Explanation)
		}
	}
	if len(report.RecentChanges) > 0 {
		fmt.Println("\nrecent configuration changes Murphy surfaces with the diagnosis:")
		for _, ev := range report.RecentChanges {
			fmt.Printf("  %s\n", ev)
		}
	}
}
