// Robustness demonstrates Murphy's tolerance to bad telemetry, in two acts.
//
// Act one is the Table 2 experiment on a single scenario: a
// resource-contention fault is injected into the hotel-reservation
// emulation, the telemetry is corrupted four ways (missing values, edge,
// entity, metric) — *static* damage baked into the database — and Murphy
// diagnoses each corrupted copy. The diagnosis should survive every
// corruption.
//
// Act two injects *dynamic* faults instead: the telemetry store itself
// misbehaves at read time (transient errors, NaN-corrupted windows) and the
// resilience layer — retries with backoff plus a circuit breaker — absorbs
// the faults during online training. The diagnosis should again survive.
//
// Run with: go run ./examples/robustness
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"murphy"
	"murphy/internal/chaos"
	"murphy/internal/degrade"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

func main() {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s\nsymptom: %s\ntrue cause: %s\n\n",
		sc.Name, sc.Symptom, sc.Result.DB.Entity(sc.TruthEntity))

	rng := rand.New(rand.NewSource(11))
	pristine := sc.Result.DB
	prot := degrade.Protected{sc.Symptom.Entity: true, sc.TruthEntity: true}

	cases := []struct {
		name string
		db   *telemetry.DB
	}{
		{"unchanged", pristine},
	}
	if db, pair, err := degrade.MissingEdge(pristine, prot, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing edge %s<->%s", pair[0], pair[1]), db})
	}
	if db, victim, err := degrade.MissingEntity(pristine, prot, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing entity %s", victim), db})
	}
	if db, metric, err := degrade.MissingMetric(pristine, sc.TruthEntity, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing metric %s on the root cause", metric), db})
	}
	if db, n, err := degrade.MissingValues(pristine, 0.25, sc.FaultStart, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing history for %d entities", n), db})
	}

	accept := map[telemetry.EntityID]bool{sc.TruthEntity: true}
	for _, id := range sc.Acceptable {
		accept[id] = true
	}
	cfg := murphy.DefaultConfig()
	cfg.Samples = 1500
	cfg.TrainWindow = 280
	fmt.Println("--- static corruption (Table 2 degradations) ---")
	for _, c := range cases {
		sys, err := murphy.New(c.db, murphy.WithConfig(cfg), murphy.WithSeeds(sc.Symptom.Entity))
		if err != nil {
			log.Fatal(err)
		}
		report, err := sys.Diagnose(sc.Symptom)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s -> %s (%d causes from %d candidates)\n",
			c.name, verdict(report, accept), len(report.Causes), len(report.Candidates))
	}

	// Act two: the store misbehaves at read time. 10% of training-window
	// reads fail transiently and a sprinkle of values arrive NaN-corrupted;
	// retries absorb the transients and the breaker guards against a source
	// that goes fully dark.
	fmt.Println("\n--- dynamic faults (chaos injection at read time) ---")
	inj := chaos.Wrap(pristine, chaos.Config{Seed: 42, FaultRate: 0.10, CorruptRate: 0.001})
	sys, err := murphy.New(pristine,
		murphy.WithConfig(cfg),
		murphy.WithSeeds(sc.Symptom.Entity),
		murphy.WithResilience(murphy.Resilience{
			Source:  inj,
			Retry:   &murphy.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
			Breaker: &murphy.BreakerConfig{FailureThreshold: 8, Cooldown: 50 * time.Millisecond},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Diagnose(sc.Symptom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-45s -> %s (%d causes from %d candidates)\n",
		"10% transient faults + NaN corruption", verdict(report, accept), len(report.Causes), len(report.Candidates))
	ist := inj.Stats()
	rst, _ := sys.SourceStats()
	fmt.Printf("injector: %d reads saw %d faults, %d corrupted values\n", ist.Reads, ist.Faults, ist.Corrupted)
	fmt.Printf("resilience: %d reads, %d retried, %d failed for good, %d rejected by the breaker\n",
		rst.Reads, rst.Retried, rst.Failed, rst.Rejected)
	fmt.Printf("report: partial=%v, %d skipped candidates, %d unrecoverable read failures\n",
		report.Partial, len(report.Skipped), report.ReadFailures)
}

// verdict reports where the first acceptable root cause ranks.
func verdict(report *murphy.Report, accept map[telemetry.EntityID]bool) string {
	for i, rc := range report.Causes {
		if accept[rc.Entity] {
			if i < 5 {
				return fmt.Sprintf("HIT at rank %d", i+1)
			}
			break
		}
	}
	return "MISS"
}
