// Robustness demonstrates the Table 2 experiment on a single scenario: a
// resource-contention fault is injected into the hotel-reservation
// emulation, the telemetry is corrupted four ways (missing values, edge,
// entity, metric), and Murphy diagnoses each corrupted copy. The diagnosis
// should survive every corruption.
//
// Run with: go run ./examples/robustness
package main

import (
	"fmt"
	"log"
	"math/rand"

	"murphy"
	"murphy/internal/degrade"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

func main() {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s\nsymptom: %s\ntrue cause: %s\n\n",
		sc.Name, sc.Symptom, sc.Result.DB.Entity(sc.TruthEntity))

	rng := rand.New(rand.NewSource(11))
	pristine := sc.Result.DB
	prot := degrade.Protected{sc.Symptom.Entity: true, sc.TruthEntity: true}

	cases := []struct {
		name string
		db   *telemetry.DB
	}{
		{"unchanged", pristine},
	}
	if db, pair, err := degrade.MissingEdge(pristine, prot, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing edge %s<->%s", pair[0], pair[1]), db})
	}
	if db, victim, err := degrade.MissingEntity(pristine, prot, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing entity %s", victim), db})
	}
	if db, metric, err := degrade.MissingMetric(pristine, sc.TruthEntity, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing metric %s on the root cause", metric), db})
	}
	if db, n, err := degrade.MissingValues(pristine, 0.25, sc.FaultStart, rng); err == nil {
		cases = append(cases, struct {
			name string
			db   *telemetry.DB
		}{fmt.Sprintf("missing history for %d entities", n), db})
	}

	accept := map[telemetry.EntityID]bool{sc.TruthEntity: true}
	for _, id := range sc.Acceptable {
		accept[id] = true
	}
	cfg := murphy.DefaultConfig()
	cfg.Samples = 1500
	cfg.TrainWindow = 280
	for _, c := range cases {
		sys, err := murphy.New(c.db, murphy.WithConfig(cfg), murphy.WithSeeds(sc.Symptom.Entity))
		if err != nil {
			log.Fatal(err)
		}
		report, err := sys.Diagnose(sc.Symptom)
		if err != nil {
			log.Fatal(err)
		}
		rank := -1
		for i, rc := range report.Causes {
			if accept[rc.Entity] {
				rank = i + 1
				break
			}
		}
		verdict := "MISS"
		if rank > 0 && rank <= 5 {
			verdict = fmt.Sprintf("HIT at rank %d", rank)
		}
		fmt.Printf("%-45s -> %s (%d causes from %d candidates)\n",
			c.name, verdict, len(report.Causes), len(report.Candidates))
	}
}
