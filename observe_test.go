package murphy

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// seqObserver records the event stream for golden-style assertions. Observer
// callbacks are serialized by the recorder, so no locking is needed here —
// which is itself part of the contract under test with -race.
type seqObserver struct {
	events []string
}

func (o *seqObserver) StageStart(st Stage) {
	o.events = append(o.events, "start "+st.String())
}

func (o *seqObserver) StageEnd(st Stage, wall, cpu time.Duration) {
	if wall < 0 || cpu < 0 {
		o.events = append(o.events, "negative timing "+st.String())
		return
	}
	o.events = append(o.events, "end "+st.String())
}

func (o *seqObserver) Progress(st Stage, done, total int, entity string) {
	if done == total {
		o.events = append(o.events, fmt.Sprintf("progress %s %d/%d", st, done, total))
	}
}

func TestObserverStageSequence(t *testing.T) {
	obs := &seqObserver{}
	sys := testSystem(t, WithObserver(obs))
	if _, err := sys.Diagnose(demoSymptom()); err != nil {
		t.Fatal(err)
	}
	// Stage spans arrive in pipeline order, each start paired with its end.
	want := []string{
		"start train", "end train",
		"start prune", "end prune",
		"start test",
	}
	var got []string
	for _, e := range obs.events {
		if strings.HasPrefix(e, "start ") || strings.HasPrefix(e, "end ") {
			got = append(got, e)
		}
	}
	if len(got) < 10 {
		t.Fatalf("expected all five stage spans, got %v", obs.events)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("event[%d] = %q, want %q (full: %v)", i, got[i], w, got)
		}
	}
	tail := got[len(got)-6:]
	wantTail := []string{"end test", "start rank", "end rank", "start explain", "end explain"}
	if fmt.Sprint(tail[1:]) != fmt.Sprint(wantTail) {
		t.Fatalf("trailing events = %v, want %v", tail[1:], wantTail)
	}
	// The test stage reported completion over all candidates.
	var progressed bool
	for _, e := range obs.events {
		if strings.HasPrefix(e, "progress test ") {
			progressed = true
		}
	}
	if !progressed {
		t.Fatalf("no final test-stage progress event in %v", obs.events)
	}
}

func TestStatsSnapshotCounters(t *testing.T) {
	sys := testSystem(t, WithStats())
	if _, err := sys.Diagnose(demoSymptom()); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if !st.Enabled {
		t.Fatal("stats should be enabled via WithStats")
	}
	for _, ctr := range []string{"factors_trained", "gibbs_samples", "candidates_tested"} {
		if st.Counters[ctr] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (all: %v)", ctr, st.Counters[ctr], st.Counters)
		}
	}
	stages := map[string]bool{}
	for _, s := range st.Stages {
		if s.Calls > 0 {
			stages[s.Stage] = true
		}
	}
	for _, s := range []string{"train", "prune", "test", "rank", "explain"} {
		if !stages[s] {
			t.Errorf("stage %s recorded no calls: %+v", s, st.Stages)
		}
	}
	if !strings.Contains(st.Table(), "train") {
		t.Errorf("breakdown table missing the train stage:\n%s", st.Table())
	}
	sys.ResetStats()
	if got := sys.Stats().Counters["factors_trained"]; got != 0 {
		t.Errorf("ResetStats left factors_trained = %d", got)
	}
}

func TestStatsDisabledByDefault(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Diagnose(demoSymptom()); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Enabled {
		t.Fatal("stats should be disabled unless opted in")
	}
	if n := st.Counters["gibbs_samples"]; n != 0 {
		t.Errorf("disabled recorder counted %d gibbs samples", n)
	}
}

// countingObserver is safe for concurrent attachment plus the serialized
// dispatch guarantee; it only counts.
type countingObserver struct {
	starts, ends, progress atomic.Int64
}

func (o *countingObserver) StageStart(Stage)                             { o.starts.Add(1) }
func (o *countingObserver) StageEnd(Stage, time.Duration, time.Duration) { o.ends.Add(1) }
func (o *countingObserver) Progress(Stage, int, int, string)             { o.progress.Add(1) }

// TestConcurrentObserversUnderParallelDiagnosis drives parallel candidate
// evaluation with observers attached from multiple goroutines; run with
// -race this checks the dispatch-serialization contract.
func TestConcurrentObserversUnderParallelDiagnosis(t *testing.T) {
	o1, o2 := &countingObserver{}, &countingObserver{}
	sys := testSystem(t, WithWorkers(4), WithObserver(o1), WithObserver(o2))
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.Diagnose(demoSymptom()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if o1.starts.Load() != o1.ends.Load() {
		t.Errorf("observer 1: %d starts vs %d ends", o1.starts.Load(), o1.ends.Load())
	}
	if o1.starts.Load() != o2.starts.Load() {
		t.Errorf("observers diverge: %d vs %d starts", o1.starts.Load(), o2.starts.Load())
	}
	// 3 diagnoses × 5 stages.
	if got := o1.starts.Load(); got != 15 {
		t.Errorf("observer saw %d stage starts, want 15", got)
	}
	if o1.progress.Load() == 0 {
		t.Error("no progress events under parallel evaluation")
	}
}

func TestStatsOkBool(t *testing.T) {
	plain := testSystem(t)
	if _, ok := plain.FactorCacheStats(); ok {
		t.Error("FactorCacheStats ok=true without a configured cache")
	}
	if _, ok := plain.SourceStats(); ok {
		t.Error("SourceStats ok=true without a resilient source")
	}

	cached := testSystem(t, WithCaching(Caching{}))
	if _, err := cached.Diagnose(demoSymptom()); err != nil {
		t.Fatal(err)
	}
	cst, ok := cached.FactorCacheStats()
	if !ok {
		t.Fatal("FactorCacheStats ok=false with caching configured")
	}
	if cst.Misses == 0 {
		t.Errorf("cache stats show no misses after a first diagnosis: %+v", cst)
	}

	resilient := testSystem(t, WithResilience(Resilience{
		Retry: &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	}))
	if _, err := resilient.Diagnose(demoSymptom()); err != nil {
		t.Fatal(err)
	}
	sst, ok := resilient.SourceStats()
	if !ok {
		t.Fatal("SourceStats ok=false with a retry layer configured")
	}
	if sst.Reads == 0 {
		t.Errorf("resilient source saw no reads: %+v", sst)
	}
}

func TestObservabilityMuxServes(t *testing.T) {
	sys := testSystem(t, WithStats())
	if _, err := sys.Diagnose(demoSymptom()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.ObservabilityMux(false))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "murphy_factors_trained_total") {
		t.Errorf("/metrics missing counter family:\n%s", body)
	}
}
