// Golden end-to-end ranking tests: seed-fixed diagnoses whose exact ranked
// cause lists are pinned, proving (a) the pipeline is deterministic, (b) the
// factor cache is behavior-preserving bit for bit, and (c) the early-stop
// fast path keeps the top-1 verdict. Any intended ranking change must update
// these lists consciously.
package murphy

import (
	"fmt"
	"testing"

	"murphy/internal/enterprise"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// goldenMicrosim is the ranked certified-cause list of the default hotel
// contention scenario at the config below.
var goldenMicrosim = []telemetry.EntityID{
	"hotel-reservation/svc/search",
	"hotel-reservation/client/client",
	"hotel-reservation/svc/frontend",
	"hotel-reservation/flow/client->frontend",
	"hotel-reservation/node/node-1",
	"hotel-reservation/ctr/search",
}

// goldenEnterprise is the ranked certified-cause list of enterprise
// incident 2 at the config below.
var goldenEnterprise = []telemetry.EntityID{
	"app-01/app-vnic-0",
	"app-01/flow-web0-app",
	"app-01/flow-web1-app",
	"app-01/flow-app0-db",
	"app-01/db-vnic-0",
	"app-01/app-vm-0",
	"app-01/web-vm-1",
	"app-01/web-vnic-0",
	"app-01/flow-client-web",
	"app-01/db-vm-0",
	"app-01/datastore",
}

func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Samples = 2000
	cfg.TrainWindow = 280
	return cfg
}

// diagnoseRanked builds a System with the given extra options and returns
// the report of one diagnosis.
func diagnoseRanked(t *testing.T, db *telemetry.DB, sym telemetry.Symptom, extra ...Option) *Report {
	t.Helper()
	opts := append([]Option{WithConfig(goldenConfig()), WithSeeds(sym.Entity)}, extra...)
	sys, err := New(db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// rankedEntities lists the certified (non-degraded) causes in rank order.
func rankedEntities(rep *Report) []telemetry.EntityID {
	var out []telemetry.EntityID
	for _, c := range rep.Causes {
		if c.Degraded {
			continue
		}
		out = append(out, c.Entity)
	}
	return out
}

func assertGolden(t *testing.T, got, want []telemetry.EntityID) {
	t.Helper()
	if len(want) == 0 {
		t.Fatalf("golden list not recorded; actual ranking:\n%s", formatRanking(got))
	}
	if len(got) != len(want) {
		t.Fatalf("ranked %d causes, want %d; actual ranking:\n%s", len(got), len(want), formatRanking(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d = %q, want %q; actual ranking:\n%s", i+1, got[i], want[i], formatRanking(got))
		}
	}
}

func formatRanking(ids []telemetry.EntityID) string {
	s := ""
	for _, id := range ids {
		s += fmt.Sprintf("\t%q,\n", id)
	}
	return s
}

// assertIdenticalCauses requires bit-identical certified causes: same
// entities, ranks, p-values, effects, and anomaly scores.
func assertIdenticalCauses(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if len(a.Causes) != len(b.Causes) {
		t.Fatalf("%s: %d causes vs %d", label, len(a.Causes), len(b.Causes))
	}
	for i := range a.Causes {
		x, y := a.Causes[i], b.Causes[i]
		if x.Entity != y.Entity || x.PValue != y.PValue || x.Effect != y.Effect || x.Score != y.Score || x.Degraded != y.Degraded {
			t.Fatalf("%s: cause %d differs: %q p=%v eff=%v vs %q p=%v eff=%v",
				label, i+1, x.Entity, x.PValue, x.Effect, y.Entity, y.PValue, y.Effect)
		}
	}
}

func assertSameTop1(t *testing.T, label string, a, b *Report) {
	t.Helper()
	top := func(r *Report) telemetry.EntityID {
		ids := rankedEntities(r)
		if len(ids) == 0 {
			return ""
		}
		return ids[0]
	}
	if ta, tb := top(a), top(b); ta != tb {
		t.Fatalf("%s: top-1 %q vs %q", label, ta, tb)
	}
}

func TestGoldenMicrosimRanking(t *testing.T) {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		t.Fatal(err)
	}
	db := sc.Result.DB
	baseline := diagnoseRanked(t, db, sc.Symptom)
	assertGolden(t, rankedEntities(baseline), goldenMicrosim)
	if top := rankedEntities(baseline); top[0] != "hotel-reservation/svc/search" {
		t.Errorf("top-1 = %q, want the contended search service", top[0])
	}

	// The factor cache must be invisible in the output, bit for bit —
	// sequentially and under DiagnoseParallel.
	cached := diagnoseRanked(t, db, sc.Symptom, WithFactorCache(0))
	assertIdenticalCauses(t, "cache on vs off", baseline, cached)
	cachedPar := diagnoseRanked(t, db, sc.Symptom, WithFactorCache(0), WithWorkers(4))
	assertIdenticalCauses(t, "cache+parallel vs baseline", baseline, cachedPar)

	// The early-stop fast path may truncate p-values but must keep the
	// top-ranked cause (and, on this clear-cut scenario, the accept set).
	fast := diagnoseRanked(t, db, sc.Symptom, WithFactorCache(0), WithEarlyStop(0.999), WithWorkers(4))
	assertSameTop1(t, "early stop vs baseline", baseline, fast)
	assertGolden(t, rankedEntities(fast), goldenMicrosim)
}

func TestGoldenEnterpriseRanking(t *testing.T) {
	gen := enterprise.DefaultGenOptions()
	gen.Apps = 7 // the incident library's minimum
	env, inc, err := enterprise.RunIncident(gen, enterprise.ByIndex(2))
	if err != nil {
		t.Fatal(err)
	}
	db := env.DB
	baseline := diagnoseRanked(t, db, inc.Symptom)
	assertGolden(t, rankedEntities(baseline), goldenEnterprise)

	cached := diagnoseRanked(t, db, inc.Symptom, WithFactorCache(0), WithWorkers(4))
	assertIdenticalCauses(t, "cache on vs off", baseline, cached)

	fast := diagnoseRanked(t, db, inc.Symptom, WithFactorCache(0), WithEarlyStop(0.999), WithWorkers(4))
	assertSameTop1(t, "early stop vs baseline", baseline, fast)
}
