// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) at reduced scale, plus ablation benches for the design choices
// DESIGN.md calls out. Accuracy values are attached as custom benchmark
// metrics, so `go test -bench=. -benchmem` both times the pipelines and
// reports the reproduced numbers. Run cmd/murphybench -full for the
// paper-scale parameters.
//
// This file is an *external* test package (murphy_test) on purpose: it pulls
// in internal/harness, which reaches the facade through internal/serve, and
// an in-package test would close that import loop.
package murphy_test

import (
	"context"
	"fmt"

	"murphy/internal/regress"
	"testing"
	"time"

	"murphy/internal/core"
	"murphy/internal/enterprise"
	"murphy/internal/graph"
	"murphy/internal/harness"
	"murphy/internal/microsim"
	"murphy/internal/obs"
	"murphy/internal/telemetry"
)

// benchFig5 runs the §6.1 interference experiment once per iteration.
func BenchmarkFig5c_InterferenceTopK(b *testing.B) {
	opts := harness.DefaultFig5Options()
	opts.Variants = 8
	opts.Samples = 300
	var last *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TopK[harness.SchemeMurphy][5], "murphy-top5")
	b.ReportMetric(last.TopK[harness.SchemeSage][5], "sage-top5")
	b.ReportMetric(last.TopK[harness.SchemeNetMedic][5], "netmedic-top5")
	b.ReportMetric(last.TopK[harness.SchemeExplainIt][5], "explainit-top5")
	b.Log("\n" + last.String())
}

func BenchmarkFig5d_PrecisionRecall(b *testing.B) {
	opts := harness.DefaultFig5Options()
	opts.Variants = 8
	opts.Samples = 300
	var last *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Recall[harness.SchemeMurphy], "murphy-recall")
	b.ReportMetric(last.Precision[harness.SchemeMurphy], "murphy-precision")
	b.ReportMetric(last.RelaxedRecall[harness.SchemeMurphy], "murphy-relaxed-recall")
	b.ReportMetric(last.RelaxedRecall[harness.SchemeNetMedic], "netmedic-relaxed-recall")
}

func BenchmarkTable1_ProductionIncidents(b *testing.B) {
	opts := harness.DefaultTable1Options()
	opts.Gen.Steps = 240
	opts.Samples = 400
	var last *harness.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable1(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AvgFPs[harness.SchemeMurphy], "murphy-avg-fps")
	b.ReportMetric(last.AvgFPs[harness.SchemeNetMedic], "netmedic-avg-fps")
	b.ReportMetric(last.AvgFPs[harness.SchemeExplainIt], "explainit-avg-fps")
	b.Log("\n" + last.String())
}

func benchFig6(b *testing.B, topo string) {
	opts := harness.DefaultFig6Options()
	opts.Topo = topo
	opts.Scenarios = 8
	opts.Samples = 300
	var last *harness.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig6(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TopK[harness.SchemeMurphy][1], "murphy-top1")
	b.ReportMetric(last.TopK[harness.SchemeMurphy][5], "murphy-top5")
	b.ReportMetric(last.TopK[harness.SchemeSage][1], "sage-top1")
	b.ReportMetric(last.TopK[harness.SchemeSage][5], "sage-top5")
	b.Log("\n" + last.String())
}

func BenchmarkFig6b_SocialNetworkContention(b *testing.B) { benchFig6(b, "social") }
func BenchmarkFig6c_HotelReservationContention(b *testing.B) {
	benchFig6(b, "hotel")
}

func BenchmarkTable2_Robustness(b *testing.B) {
	opts := harness.DefaultTable2Options()
	opts.Scenarios = 6
	opts.Samples = 800
	var last *harness.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable2(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Aggregate[harness.SchemeMurphy], "murphy-aggregate")
	b.ReportMetric(last.Aggregate[harness.SchemeSage], "sage-aggregate")
	b.ReportMetric(last.Recall[harness.SchemeMurphy]["unchanged"], "murphy-unchanged")
	b.Log("\n" + last.String())
}

func BenchmarkFig7_Microbenchmarks(b *testing.B) {
	opts := harness.DefaultFig7Options()
	opts.Scenarios = 8
	opts.Samples = 300
	var last *harness.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.OnFreshData, "online")
	b.ReportMetric(last.TrainedOffline, "offline")
	b.ReportMetric(last.NoPriorIncidents, "no-prior-incidents")
	b.Log("\n" + last.String())
}

func BenchmarkFig8a_MetricPredictionModels(b *testing.B) {
	opts := harness.DefaultFig8aOptions()
	opts.Gen.Apps = 6
	opts.Gen.Steps = 200
	opts.MaxEntities = 60
	var last *harness.Fig8aResult
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig8a(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	med := last.MedianMASE()
	b.ReportMetric(med["linear regression"], "ridge-median-mase")
	b.ReportMetric(med["GMM"], "gmm-median-mase")
	b.ReportMetric(med["neural network"], "nn-median-mase")
	b.ReportMetric(med["SVM"], "svm-median-mase")
	b.Log("\n" + last.String())
}

func BenchmarkFig8b_CyclicEffects(b *testing.B) {
	opts := harness.DefaultFig8bOptions()
	opts.Gen.Apps = 12
	opts.Gen.Hosts = 10
	opts.Gen.Steps = 220
	opts.ScenariosPerApp = 16
	opts.TrainWindow = 200
	var last *harness.Fig8bResult
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig8b(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, w := range opts.Rounds {
		b.ReportMetric(float64(last.Correct[w]), "correct-w"+string(rune('0'+w)))
	}
	b.Log("\n" + last.String())
}

func BenchmarkScaling_Runtime(b *testing.B) {
	opts := harness.DefaultScalingOptions()
	var last *harness.ScalingResult
	for i := 0; i < b.N; i++ {
		res, err := harness.RunScaling(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	pts := last.Points
	b.ReportMetric(float64(pts[len(pts)-1].Entities), "max-entities")
	b.Log("\n" + last.String())
}

func BenchmarkSensitivity_Parameters(b *testing.B) {
	opts := harness.DefaultSensitivityOptions()
	opts.Scenarios = 4
	opts.Samples = 200
	var last *harness.SensitivityResult
	for i := 0; i < b.N; i++ {
		res, err := harness.RunSensitivity(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ByW[1].Recall, "recall-w1")
	b.ReportMetric(last.ByW[4].Recall, "recall-w4")
	b.Log("\n" + last.String())
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks and ablations

// contentionModel trains one Murphy model for per-operation benches.
func contentionModel(b *testing.B, cfg core.Config) (*core.Model, *microsim.Scenario) {
	b.Helper()
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Train(sc.Result.DB, g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, sc
}

func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Samples = 500
	cfg.TrainWindow = 280
	return cfg
}

func BenchmarkCoreTrainOnline(b *testing.B) {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(sc.Result.DB, g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDiagnose(b *testing.B) {
	m, sc := contentionModel(b, benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Diagnose(sc.Symptom); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: Gibbs rounds W (accuracy/time tradeoff of §6.8).
func BenchmarkAblationGibbsRounds(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(string(rune('0'+w))+"rounds", func(b *testing.B) {
			cfg := benchConfig()
			cfg.GibbsRounds = w
			m, sc := contentionModel(b, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Diagnose(sc.Symptom); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: top-B feature selection (paper: B in {5,10,20} within 3%).
func BenchmarkAblationTopB(b *testing.B) {
	for _, topB := range []int{5, 10, 20} {
		name := map[int]string{5: "B5", 10: "B10", 20: "B20"}[topB]
		b.Run(name, func(b *testing.B) {
			sc, err := microsim.Contention(microsim.DefaultContentionOptions())
			if err != nil {
				b.Fatal(err)
			}
			g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig()
			cfg.TopB = topB
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(sc.Result.DB, g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: known directed edges vs the bidirectional default (§4.1).
func BenchmarkAblationEdgeDirectionality(b *testing.B) {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.Run("bidirectional", func(b *testing.B) {
		g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.Train(sc.Result.DB, g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Diagnose(sc.Symptom); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("directed-call-graph", func(b *testing.B) {
		dagDB := sc.Result.DB.Clone()
		dagDB.RemoveAllEdges()
		for _, e := range sc.CallDAG {
			if err := dagDB.Associate(e[0], e[1], telemetry.Directed); err != nil {
				b.Fatal(err)
			}
		}
		g, err := graph.Build(dagDB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.Train(dagDB, g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Diagnose(sc.Symptom); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCycleStats(b *testing.B) {
	gen := enterprise.DefaultGenOptions()
	gen.Apps = 8
	gen.Hosts = 8
	gen.Steps = 160
	var last *harness.CycleStatsResult
	for i := 0; i < b.N; i++ {
		res, err := harness.RunCycleStats(gen)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Cycles2), "cycles2")
	b.ReportMetric(float64(last.Cycles3), "cycles3")
	b.Log("\n" + last.String())
}

// Parallel candidate evaluation (§6.7's suggested optimization): identical
// results, wall time scales with workers.
func BenchmarkDiagnoseParallel(b *testing.B) {
	m, sc := contentionModel(b, benchConfig())
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.DiagnoseParallel(sc.Symptom, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: nonlinear MLP factors vs the production ridge factors (§7
// suggests a different learning model could capture nonlinearity).
func BenchmarkAblationFactorModel(b *testing.B) {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	trainers := map[string]regress.Trainer{
		"ridge": nil, // default
		"mlp":   regress.MLPTrainer(5, 1),
	}
	for name, tr := range trainers {
		tr := tr
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.TrainAt(sc.Result.DB, g, cfg, sc.Result.DB.Len()-1, tr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Diagnose(sc.Symptom); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Combined offline+online training (§7 "Leveraging offline training").
func BenchmarkAblationCombinedTraining(b *testing.B) {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.Run("online-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Train(sc.Result.DB, g, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("combined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TrainCombined(sc.Result.DB, g, cfg, sc.FaultStart-1, 200, 0.7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Inference fast path: factor cache + early-stopped counterfactual tests

// BenchmarkFastPathDiagnoseParallel times the operator triage loop (online
// retrain + DiagnoseParallel at the same slice) with the shared-computation
// fast path off and on. The sample budget is the paper's scale so the
// sequential tests have room to cut it.
func BenchmarkFastPathDiagnoseParallel(b *testing.B) {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	db := sc.Result.DB
	g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		b.Fatal(err)
	}
	base := benchConfig()
	base.Samples = 4000
	variants := []struct {
		name         string
		early, cache bool
	}{
		{"baseline", false, false},
		{"cache", false, true},
		{"cache+earlystop", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := base
			if v.early {
				cfg.EarlyStop = true
				cfg.EarlyStopConfidence = 0.999
			}
			var cache *core.FactorCache
			if v.cache {
				cache = core.NewFactorCache(0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := core.TrainOpt(context.Background(), db, g, cfg, core.TrainOpts{Now: -1, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.DiagnoseParallel(sc.Symptom, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFastPathTable2 runs the harness A/B over Table-2 contention
// scenarios and reports the measured speedup and equivalence checks as
// benchmark metrics (1 = identical).
func BenchmarkFastPathTable2(b *testing.B) {
	opts := harness.DefaultFastPathOptions()
	opts.Scenarios = 2
	var last *harness.FastPathResult
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFastPath(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	ind := func(ok bool) float64 {
		if ok {
			return 1
		}
		return 0
	}
	b.ReportMetric(last.Speedup, "speedup")
	b.ReportMetric(ind(last.RankingsIdentical), "rankings-identical")
	b.ReportMetric(ind(last.Top1Identical), "top1-identical")
	b.Log("\n" + last.String())
}

// ---------------------------------------------------------------------------
// Parallel training and multi-chain sampling

// BenchmarkCoreTrainParallel times the training pool across worker counts on
// the same workload as BenchmarkCoreTrainOnline; workers=1 is the serial
// fallback path (no pool), so the suite exposes the pool's overhead directly.
func BenchmarkCoreTrainParallel(b *testing.B) {
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TrainOpt(context.Background(), sc.Result.DB, g, cfg,
					core.TrainOpts{Now: -1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalTrain replays a sliding window (one-slice advances)
// over the contention workload: "full" retrains every factor from scratch at
// each slide, "incremental" slides the factor store's sufficient statistics
// and refits only where feature selection changes. The ratio of the two is
// the steady-state training-cost reduction of the incremental trainer.
func BenchmarkIncrementalTrain(b *testing.B) {
	const slides = 8
	sc, err := microsim.Contention(microsim.DefaultContentionOptions())
	if err != nil {
		b.Fatal(err)
	}
	db := sc.Result.DB
	g, err := graph.Build(db, []telemetry.EntityID{sc.Symptom.Entity}, -1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	ctx := context.Background()
	anchor := db.Len() - 1 - slides
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for t := anchor + 1; t < db.Len(); t++ {
				if _, err := core.TrainOpt(ctx, db, g, cfg, core.TrainOpts{Now: t}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		store := core.NewFactorStore()
		for i := 0; i < b.N; i++ {
			// Re-anchor untimed so every iteration measures pure steady
			// state: the store populated, then `slides` one-slice advances.
			b.StopTimer()
			store.Reset()
			if _, err := core.TrainOpt(ctx, db, g, cfg, core.TrainOpts{Now: anchor, Store: store}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for t := anchor + 1; t < db.Len(); t++ {
				if _, err := core.TrainOpt(ctx, db, g, cfg, core.TrainOpts{Now: t, Store: store}); err != nil {
					b.Fatal(err)
				}
			}
		}
		st := store.Stats()
		b.ReportMetric(float64(st.Hits)/float64(b.N), "hits/op")
		b.ReportMetric(float64(st.Refits)/float64(b.N), "refits/op")
	})
}

// BenchmarkDiagnoseChains times multi-chain Gibbs sampling across chain
// counts; chains=1 is the untouched legacy single-stream sampler.
func BenchmarkDiagnoseChains(b *testing.B) {
	for _, chains := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("chains%d", chains), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Chains = chains
			m, sc := contentionModel(b, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Diagnose(sc.Symptom); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Observability layer overhead

// BenchmarkObsOverhead times the same diagnosis with the instrumentation
// layer disabled (the production default — budgeted at ≤2% over the
// pre-instrumentation baseline, i.e. BenchmarkCoreDiagnose's historical
// numbers) and enabled (spans, counters, histograms all live).
func BenchmarkObsOverhead(b *testing.B) {
	m, sc := contentionModel(b, benchConfig())
	rec := obs.New()
	m.SetRecorder(rec)
	b.Run("disabled", func(b *testing.B) {
		rec.Disable()
		for i := 0; i < b.N; i++ {
			if _, err := m.Diagnose(sc.Symptom); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		rec.Reset()
		rec.Enable()
		defer rec.Disable()
		for i := 0; i < b.N; i++ {
			if _, err := m.Diagnose(sc.Symptom); err != nil {
				b.Fatal(err)
			}
		}
		snap := rec.Snapshot()
		b.ReportMetric(float64(snap.Counters["gibbs_samples"])/float64(b.N), "gibbs-samples/op")
	})
}

// ---------------------------------------------------------------------------
// Batched Gibbs kernel throughput

// BenchmarkGibbsKernel times the inner sampling kernel in isolation (one
// trained model, repeated Diagnose calls on the Table-2 contention workload)
// per precision, reporting raw sampling throughput as samples/sec — the
// metric the bench baseline gates with higher-is-better semantics.
func BenchmarkGibbsKernel(b *testing.B) {
	for _, prec := range []core.Precision{core.PrecisionFloat64, core.PrecisionFloat32} {
		b.Run(prec.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Samples = 4000
			cfg.Sampler.Precision = prec
			rec := obs.New()
			rec.Enable()
			sc, err := microsim.Contention(microsim.DefaultContentionOptions())
			if err != nil {
				b.Fatal(err)
			}
			g, err := graph.Build(sc.Result.DB, []telemetry.EntityID{sc.Symptom.Entity}, -1)
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.TrainOpt(context.Background(), sc.Result.DB, g, cfg,
				core.TrainOpts{Now: -1, Obs: rec})
			if err != nil {
				b.Fatal(err)
			}
			start := rec.Counter(obs.CtrGibbsSamples)
			b.ResetTimer()
			t0 := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := m.Diagnose(sc.Symptom); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(t0).Seconds()
			b.StopTimer()
			drawn := rec.Counter(obs.CtrGibbsSamples) - start
			if elapsed > 0 {
				b.ReportMetric(float64(drawn)/elapsed, "samples/sec")
			}
		})
	}
}
