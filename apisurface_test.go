package murphy

// The public API surface is pinned to a golden file: any change to an
// exported name, signature, or struct field in package murphy must show up
// as a reviewed diff in testdata/api_surface.golden. Regenerate with
//
//	UPDATE_API_SURFACE=1 go test -run TestAPISurface .
//
// Removing or changing an existing line is a breaking change and needs a
// SchemaVersion / deprecation story; adding lines is fine.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const apiSurfaceGolden = "testdata/api_surface.golden"

func TestAPISurface(t *testing.T) {
	got := describeAPISurface(t)
	if os.Getenv("UPDATE_API_SURFACE") != "" {
		if err := os.MkdirAll(filepath.Dir(apiSurfaceGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiSurfaceGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", apiSurfaceGolden)
		return
	}
	want, err := os.ReadFile(apiSurfaceGolden)
	if err != nil {
		t.Fatalf("missing API-surface golden (run UPDATE_API_SURFACE=1 go test -run TestAPISurface .): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface changed; review the diff and regenerate the golden if intended\n%s",
			surfaceDiff(string(want), got))
	}
}

// describeAPISurface renders every exported declaration of the root package
// in a stable one-line-per-item format.
func describeAPISurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["murphy"]
	if !ok {
		t.Fatalf("package murphy not found in %v", pkgs)
	}
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	expr := func(e ast.Expr) string {
		var b strings.Builder
		if err := printer.Fprint(&b, fset, e); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := ""
				if d.Recv != nil && len(d.Recv.List) == 1 {
					rt := expr(d.Recv.List[0].Type)
					if !ast.IsExported(strings.TrimPrefix(rt, "*")) {
						continue
					}
					recv = "(" + rt + ") "
				}
				d.Type.Func = token.NoPos // normalize position noise
				add("func %s%s%s", recv, d.Name.Name, strings.TrimPrefix(expr(d.Type), "func"))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						assign := ""
						if s.Assign != token.NoPos {
							assign = "= "
						}
						if st, ok := s.Type.(*ast.StructType); ok {
							add("type %s struct", s.Name.Name)
							for _, fld := range st.Fields.List {
								ft := expr(fld.Type)
								if len(fld.Names) == 0 {
									add("type %s struct: %s (embedded)", s.Name.Name, ft)
									continue
								}
								for _, n := range fld.Names {
									if n.IsExported() {
										add("type %s struct: %s %s", s.Name.Name, n.Name, ft)
									}
								}
							}
							continue
						}
						add("type %s %s%s", s.Name.Name, assign, expr(s.Type))
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							if n.IsExported() {
								add("%s %s", kind, n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// surfaceDiff renders a minimal added/removed listing between two goldens.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}
