package murphy_test

import (
	"fmt"
	"sync"
	"testing"

	"murphy"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
)

// TestDiagnoseWhileIngestAppends streams telemetry appends into the
// monitoring database while a diagnosis trains and infers over it — the
// always-on daemon's steady state. Run under -race this proves the DB-level
// synchronization covers the whole read path (training window reads, the
// anomaly scan, explanation labeling); functionally it asserts the
// diagnosis still completes and returns a well-formed report.
func TestDiagnoseWhileIngestAppends(t *testing.T) {
	opts := microsim.DefaultInterferenceOptions()
	opts.Steps = 120
	sc, err := microsim.Interference(opts)
	if err != nil {
		t.Fatal(err)
	}
	db := sc.Result.DB

	cfg := murphy.DefaultConfig()
	cfg.Samples = 120
	cfg.TrainWindow = 80
	sys, err := murphy.New(db, murphy.WithConfig(cfg), murphy.WithSeeds(sc.Symptom.Entity))
	if err != nil {
		t.Fatal(err)
	}

	ents := db.Entities()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ents[(w+i)%len(ents)]
				for _, metric := range db.MetricNames(id) {
					if err := db.Observe(id, metric, db.Len(), float64(i%7)); err != nil {
						t.Errorf("append during diagnose: %v", err)
						return
					}
				}
				if i%40 == 0 {
					nid := telemetry.EntityID(fmt.Sprintf("hot-add-%d-%d", w, i))
					if err := db.AddEntity(&telemetry.Entity{ID: nid, Type: telemetry.TypeVM, Name: string(nid)}); err != nil {
						t.Errorf("hot-add during diagnose: %v", err)
						return
					}
				}
			}
		}(w)
	}

	report, err := sys.Diagnose(sc.Symptom)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("diagnose under concurrent appends: %v", err)
	}
	if report == nil || report.SchemaVersion != murphy.SchemaVersion {
		t.Fatalf("diagnose returned a malformed report: %+v", report)
	}
}
