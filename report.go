package murphy

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"murphy/internal/core"
	"murphy/internal/telemetry"
)

// SchemaVersion is the version of the public Report JSON schema, stamped on
// every Report this package produces. It increments when the wire format
// changes incompatibly; ReadJSON rejects reports from a newer schema.
const SchemaVersion = 1

// Cause is one diagnosed root cause with its explanation chain. It is a
// self-contained public schema: every field serializes to JSON (NaN p-values
// and effects of degraded verdicts become null).
type Cause struct {
	// Entity is the diagnosed root-cause entity.
	Entity telemetry.EntityID
	// Score is the anomaly score used for ranking (higher ranks first).
	Score float64
	// PValue is the Welch t-test p-value of the counterfactual shift (NaN
	// for degraded verdicts).
	PValue float64
	// Effect is the mean shift of the symptom metric under the
	// counterfactual, in units of the symptom metric's historical std
	// (positive = the counterfactual alleviates the symptom; NaN for
	// degraded verdicts).
	Effect float64
	// Path is the shortest-path subgraph (candidate → symptom) the
	// resampler walked, in resampling order. Treat it as read-only.
	Path []telemetry.EntityID
	// SamplesUsed is the total number of Monte-Carlo draws the verdict
	// consumed across the factual and counterfactual runs.
	SamplesUsed int
	// Degraded marks an anomaly-score-only fallback verdict: the
	// candidate's counterfactual evaluation failed or was cut off, so it
	// was ranked by anomaly score alone without the significance test.
	Degraded bool
	// Reason explains a degraded verdict ("deadline exceeded", "panic: …").
	Reason string
	// Explanation is the label-respecting causal chain from this root cause
	// to the symptom entity, or empty when no chain exists.
	Explanation string
}

// RootCause is the pre-v1 name of Cause.
//
// Deprecated: use Cause.
type RootCause = Cause

// causeFromCore flattens an internal verdict into the public schema.
func causeFromCore(c core.RootCause) Cause {
	return Cause{
		Entity:      c.Entity,
		Score:       c.Score,
		PValue:      c.PValue,
		Effect:      c.Effect,
		Path:        c.Path,
		SamplesUsed: c.SamplesUsed,
		Degraded:    c.Degraded,
		Reason:      c.Reason,
	}
}

// causeWire is the JSON form of Cause. PValue/Effect are pointers so the NaN
// of a degraded verdict round-trips as null (NaN is not valid JSON).
type causeWire struct {
	Entity      telemetry.EntityID   `json:"entity"`
	Score       float64              `json:"score"`
	PValue      *float64             `json:"p_value"`
	Effect      *float64             `json:"effect"`
	Path        []telemetry.EntityID `json:"path,omitempty"`
	SamplesUsed int                  `json:"samples_used,omitempty"`
	Degraded    bool                 `json:"degraded,omitempty"`
	Reason      string               `json:"reason,omitempty"`
	Explanation string               `json:"explanation,omitempty"`
}

// fptr maps a float to its wire form: NaN (and ±Inf) become null.
func fptr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// fval maps a wire float back: null becomes NaN.
func fval(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON implements json.Marshaler with the public cause schema.
func (c Cause) MarshalJSON() ([]byte, error) {
	return json.Marshal(causeWire{
		Entity:      c.Entity,
		Score:       c.Score,
		PValue:      fptr(c.PValue),
		Effect:      fptr(c.Effect),
		Path:        c.Path,
		SamplesUsed: c.SamplesUsed,
		Degraded:    c.Degraded,
		Reason:      c.Reason,
		Explanation: c.Explanation,
	})
}

// UnmarshalJSON implements json.Unmarshaler for the public cause schema.
func (c *Cause) UnmarshalJSON(data []byte) error {
	var w causeWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*c = Cause{
		Entity:      w.Entity,
		Score:       w.Score,
		PValue:      fval(w.PValue),
		Effect:      fval(w.Effect),
		Path:        w.Path,
		SamplesUsed: w.SamplesUsed,
		Degraded:    w.Degraded,
		Reason:      w.Reason,
		Explanation: w.Explanation,
	}
	return nil
}

// Skipped records one candidate whose counterfactual evaluation did not
// complete, and why (deadline exceeded, cancellation, evaluator panic).
type Skipped struct {
	Entity telemetry.EntityID `json:"entity"`
	Reason string             `json:"reason"`
}

// Report is the result of one diagnosis: a versioned, self-contained,
// JSON-serializable schema (WriteJSON/ReadJSON round-trip it).
type Report struct {
	// SchemaVersion is the report schema version (SchemaVersion at
	// production time).
	SchemaVersion int
	// Symptom is the diagnosed (entity, metric, direction) triple.
	Symptom telemetry.Symptom
	// Causes is the ranked root-cause list, most anomalous first. Fully
	// certified causes come first; when the diagnosis degraded (deadline,
	// faults, a panicking evaluation), anomaly-score-only fallback entries
	// follow, flagged with Degraded=true — a degraded guess never displaces
	// a certified cause.
	Causes []Cause
	// Candidates is the pruned search space that was evaluated.
	Candidates []telemetry.EntityID
	// RecentChanges lists configuration changes in the training window;
	// Murphy surfaces them so the operator can catch problems caused by
	// recently spawned or reconfigured entities (§4.2 edge cases).
	RecentChanges []telemetry.Event
	// Partial is true when not every candidate was fully evaluated: the
	// ranking is valid but may be incomplete.
	Partial bool
	// Skipped lists the candidates that were not fully evaluated and why.
	Skipped []Skipped
	// ReadFailures counts telemetry reads that failed even after the
	// resilience layer's retries; the affected series were treated as
	// missing data during training.
	ReadFailures int
}

// eventWire is the JSON form of a recent-changes entry. telemetry.Event
// itself is serialized untagged inside the DB snapshot format, so the report
// schema carries its own tagged mirror instead of re-tagging it.
type eventWire struct {
	Slice  int                 `json:"slice"`
	Kind   telemetry.EventKind `json:"kind"`
	Entity telemetry.EntityID  `json:"entity"`
	Detail string              `json:"detail,omitempty"`
}

// reportWire is the JSON form of Report.
type reportWire struct {
	SchemaVersion int                  `json:"schema_version"`
	Symptom       telemetry.Symptom    `json:"symptom"`
	Causes        []Cause              `json:"causes"`
	Candidates    []telemetry.EntityID `json:"candidates,omitempty"`
	RecentChanges []eventWire          `json:"recent_changes,omitempty"`
	Partial       bool                 `json:"partial,omitempty"`
	Skipped       []Skipped            `json:"skipped,omitempty"`
	ReadFailures  int                  `json:"read_failures,omitempty"`
}

// MarshalJSON implements json.Marshaler with the versioned report schema. A
// zero SchemaVersion (a hand-built Report) is stamped with the current one.
func (r *Report) MarshalJSON() ([]byte, error) {
	w := reportWire{
		SchemaVersion: r.SchemaVersion,
		Symptom:       r.Symptom,
		Causes:        r.Causes,
		Candidates:    r.Candidates,
		Partial:       r.Partial,
		Skipped:       r.Skipped,
		ReadFailures:  r.ReadFailures,
	}
	if w.SchemaVersion == 0 {
		w.SchemaVersion = SchemaVersion
	}
	for _, ev := range r.RecentChanges {
		w.RecentChanges = append(w.RecentChanges, eventWire{
			Slice: ev.Slice, Kind: ev.Kind, Entity: ev.Entity, Detail: ev.Detail,
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler for the versioned report schema.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w reportWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Report{
		SchemaVersion: w.SchemaVersion,
		Symptom:       w.Symptom,
		Causes:        w.Causes,
		Candidates:    w.Candidates,
		Partial:       w.Partial,
		Skipped:       w.Skipped,
		ReadFailures:  w.ReadFailures,
	}
	for _, ev := range w.RecentChanges {
		r.RecentChanges = append(r.RecentChanges, telemetry.Event{
			Slice: ev.Slice, Kind: ev.Kind, Entity: ev.Entity, Detail: ev.Detail,
		})
	}
	return nil
}

// WriteJSON serializes the report (indented, schema-versioned) to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON deserializes a report produced by WriteJSON (or any JSON encoding
// of Report). Reports from a newer schema version are rejected rather than
// silently misread.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("murphy: decode report: %w", err)
	}
	if r.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("murphy: report schema version %d is newer than supported %d", r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Top returns the first k causes of a report (or fewer).
func (r *Report) Top(k int) []Cause {
	if k > len(r.Causes) {
		k = len(r.Causes)
	}
	return r.Causes[:k]
}
