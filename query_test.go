package murphy

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"murphy/internal/telemetry"
)

func TestTopologyNeighborhood(t *testing.T) {
	sys := testSystem(t)
	top, err := sys.Topology("web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if top.Center != "web" || top.Depth != 1 {
		t.Fatalf("center/depth = %s/%d, want web/1", top.Center, top.Depth)
	}
	wantRefs := []telemetry.EntityID{"web", "backend", "flow"} // hops 0, then 1 sorted by ref
	if len(top.Nodes) != len(wantRefs) {
		t.Fatalf("got %d nodes, want %d: %+v", len(top.Nodes), len(wantRefs), top.Nodes)
	}
	for i, want := range wantRefs {
		n := top.Nodes[i]
		if n.Ref != want {
			t.Fatalf("node %d = %s, want %s", i, n.Ref, want)
		}
		wantHops := 1
		if want == "web" {
			wantHops = 0
		}
		if n.Hops != wantHops {
			t.Errorf("node %s: hops %d, want %d", n.Ref, n.Hops, wantHops)
		}
		// All demo associations are bidirectional, so every neighborhood node
		// can influence the center.
		if !n.InfluencesCenter || n.HopsToCenter != wantHops {
			t.Errorf("node %s: influence (%v, %d), want (true, %d)", n.Ref, n.InfluencesCenter, n.HopsToCenter, wantHops)
		}
		if n.Type == "" || n.App != "shop" {
			t.Errorf("node %s: metadata not populated: %+v", n.Ref, n)
		}
	}
	// Bidirectional pairs are emitted once, marked mutual, typed by endpoints.
	if len(top.Edges) != 2 {
		t.Fatalf("got %d edges, want 2: %+v", len(top.Edges), top.Edges)
	}
	for _, e := range top.Edges {
		if !e.Mutual {
			t.Errorf("edge %s->%s: want mutual", e.From, e.To)
		}
		if e.Kind == "" || e.Kind == "unknown->unknown" {
			t.Errorf("edge %s->%s: untyped kind %q", e.From, e.To, e.Kind)
		}
	}
}

func TestTopologyDepthDefaultsAndClamp(t *testing.T) {
	sys := testSystem(t)
	top, err := sys.Topology("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	if top.Depth != DefaultTopologyDepth {
		t.Fatalf("default depth = %d, want %d", top.Depth, DefaultTopologyDepth)
	}
	top, err = sys.Topology("web", 999)
	if err != nil {
		t.Fatal(err)
	}
	if top.Depth != MaxTopologyDepth {
		t.Fatalf("clamped depth = %d, want %d", top.Depth, MaxTopologyDepth)
	}
	// The full component is 4 entities; depth 6 reaches all of them.
	if len(top.Nodes) != 4 {
		t.Fatalf("got %d nodes at max depth, want 4", len(top.Nodes))
	}
}

func TestTopologyUnknownEntity(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Topology("ghost", 2); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("err = %v, want ErrUnknownEntity", err)
	}
	if _, err := sys.EntitySummary("ghost", 10); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("summary err = %v, want ErrUnknownEntity", err)
	}
}

// TestTopologySeesIngestedEntities pins the live-build behavior: an entity
// registered after New is queryable without rebuilding the System.
func TestTopologySeesIngestedEntities(t *testing.T) {
	db := demoDB(t)
	sys, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddEntity(&telemetry.Entity{ID: "cache", Type: telemetry.TypeContainer, App: "shop"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Associate("cache", "backend", telemetry.Directed); err != nil {
		t.Fatal(err)
	}
	top, err := sys.Topology("cache", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Nodes) != 2 || top.Nodes[1].Ref != "backend" {
		t.Fatalf("live topology wrong: %+v", top.Nodes)
	}
	// Directed cache->backend: backend cannot influence cache.
	if top.Nodes[1].InfluencesCenter {
		t.Error("backend should not influence cache over a directed edge from cache")
	}
	e := top.Edges[0]
	if e.From != "cache" || e.To != "backend" || e.Mutual {
		t.Fatalf("edge = %+v, want directed cache->backend", e)
	}
}

func TestEntitySummaryStatistics(t *testing.T) {
	sys := testSystem(t)
	sum, err := sys.EntitySummary("web", 50)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Entity != "web" || sum.Window != 50 || sum.App != "shop" {
		t.Fatalf("header wrong: %+v", sum)
	}
	if sum.FromSlice != 190 || sum.ToSlice != 239 {
		t.Fatalf("window bounds [%d, %d], want [190, 239]", sum.FromSlice, sum.ToSlice)
	}
	if len(sum.Metrics) != 1 || sum.Metrics[0].Metric != telemetry.MetricCPU {
		t.Fatalf("metrics = %+v, want one %s entry", sum.Metrics, telemetry.MetricCPU)
	}
	ms := sum.Metrics[0]
	if ms.Observed != 50 || ms.Missing != 0 {
		t.Fatalf("observed/missing = %d/%d, want 50/0", ms.Observed, ms.Missing)
	}
	for name, p := range map[string]*float64{"latest": ms.Latest, "mean": ms.Mean, "p50": ms.P50, "p95": ms.P95, "p99": ms.P99, "anomaly_z": ms.AnomalyZ} {
		if p == nil {
			t.Fatalf("%s is null on a fully observed window", name)
		}
	}
	if !(*ms.P50 <= *ms.P95 && *ms.P95 <= *ms.P99) {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", *ms.P50, *ms.P95, *ms.P99)
	}
	// The demo incident spikes the last 6 slices 300 load units up: the
	// current value is far outside the baseline.
	if !ms.Anomalous || *ms.AnomalyZ <= 0 {
		t.Fatalf("incident slice not flagged: z=%v anomalous=%v", *ms.AnomalyZ, ms.Anomalous)
	}
}

func TestEntitySummaryDefaultAndClampedWindow(t *testing.T) {
	sys := testSystem(t)
	sum, err := sys.EntitySummary("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Window != 220 { // the session's TrainWindow
		t.Fatalf("default window = %d, want 220", sum.Window)
	}
	sum, err = sys.EntitySummary("web", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Window != 240 { // clamped to db length
		t.Fatalf("clamped window = %d, want 240", sum.Window)
	}
}

func TestEntitySummaryFactorHealth(t *testing.T) {
	sys := testSystem(t, WithIncrementalTraining(IncrementalTraining{}))
	if _, err := sys.Diagnose(telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true}); err != nil {
		t.Fatal(err)
	}
	sum, err := sys.EntitySummary("backend", 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Factors) == 0 {
		t.Fatal("no factor health after an incremental diagnosis")
	}
	f := sum.Factors[0]
	if f.Metric != telemetry.MetricCPU || !f.Trained || f.DriftThreshold <= 0 {
		t.Fatalf("factor health wrong: %+v", f)
	}
	if f.DriftScore == nil {
		t.Fatal("drift score is null; want 0 while evidence is insufficient")
	}
	// Without incremental training configured there is no factor section.
	plain := testSystem(t)
	sum, err = plain.EntitySummary("backend", 50)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Factors != nil {
		t.Fatalf("factors = %+v on a non-incremental session, want none", sum.Factors)
	}
}

// TestQueryResponsesDeterministic pins the byte-identical contract: two
// systems over identical databases serialize the same topology and summary.
func TestQueryResponsesDeterministic(t *testing.T) {
	a, b := testSystem(t), testSystem(t)
	for _, enc := range []func(*System) []byte{
		func(s *System) []byte {
			top, err := s.Topology("web", 2)
			if err != nil {
				t.Fatal(err)
			}
			buf, err := json.Marshal(top)
			if err != nil {
				t.Fatal(err)
			}
			return buf
		},
		func(s *System) []byte {
			sum, err := s.EntitySummary("web", 60)
			if err != nil {
				t.Fatal(err)
			}
			buf, err := json.Marshal(sum)
			if err != nil {
				t.Fatal(err)
			}
			return buf
		},
	} {
		if ba, bb := enc(a), enc(b); string(ba) != string(bb) {
			t.Fatalf("responses differ across identical systems:\n%s\n%s", ba, bb)
		}
	}
}

func TestQuerySchemaRoundTrip(t *testing.T) {
	sys := testSystem(t)
	top, err := sys.Topology("web", 2)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(top)
	if err != nil {
		t.Fatal(err)
	}
	var top2 Topology
	if err := json.Unmarshal(buf, &top2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*top, top2) {
		t.Fatalf("topology did not round-trip:\n%+v\n%+v", *top, top2)
	}
	sum, err := sys.EntitySummary("web", 60)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var sum2 EntitySummary
	if err := json.Unmarshal(buf, &sum2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*sum, sum2) {
		t.Fatalf("summary did not round-trip:\n%+v\n%+v", *sum, sum2)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {0.95, 4.8},
	}
	for _, tc := range cases {
		if got := quantile(sorted, tc.p); got != tc.want {
			t.Errorf("quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element quantile = %v, want 7", got)
	}
}
