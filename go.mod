module murphy

go 1.22
