// Command murphy diagnoses a performance symptom against a monitoring
// snapshot: it loads a telemetry database from JSON (see cmd/murphygen for
// producing one), builds the relationship graph, trains the MRF online, and
// prints the ranked root causes with explanation chains.
//
// Usage:
//
//	murphy -snapshot db.json -entity backend-vm -metric cpu_util [-low]
//	murphy -snapshot db.json -app shop            # scan for symptoms first
//	murphy -snapshot db.json -entity backend-vm -metric cpu_util -o json
//	murphy -snapshot db.json -app shop -stats -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"murphy"
	"murphy/internal/graph"
	"murphy/internal/serve"
	"murphy/internal/telemetry"
)

func main() {
	var (
		snapshot = flag.String("snapshot", "", "path to a telemetry snapshot JSON (required)")
		entity   = flag.String("entity", "", "symptom entity ID")
		metric   = flag.String("metric", "", "symptom metric name")
		low      = flag.Bool("low", false, "symptom is abnormally low (default: high)")
		app      = flag.String("app", "", "affected application: scan it for symptoms and diagnose each")
		topK     = flag.Int("top", 5, "how many root causes to print per symptom")
		samples  = flag.Int("samples", 5000, "Monte-Carlo samples per counterfactual test")
		window   = flag.Int("window", 300, "online-training window (time slices)")
		timeout  = flag.Duration("timeout", 0, "diagnosis deadline; on expiry the partial ranking is printed (0 = none)")
		workers  = flag.Int("workers", 1, "parallel candidate evaluators (1 = sequential; results identical)")
		trainW   = flag.Int("trainworkers", 0, "training-pass pool workers (0 = follow -workers; models bit-identical at any count)")
		chains   = flag.Int("chains", 1, "independent Gibbs chains per counterfactual test (1 = single-stream sampler)")
		prec     = flag.String("precision", "float64", "sampling kernel precision: float64 (bit-stable default) or float32 (fast path)")
		retries  = flag.Int("retries", 0, "retry attempts for transient telemetry read faults (0 = no retry layer)")
		cache    = flag.Bool("cache", false, "reuse trained factors across the diagnoses of this run (behavior-preserving)")
		inctrain = flag.Bool("inctrain", false, "maintain trained factors incrementally across the diagnoses of this run: windows that slide between diagnoses update sufficient statistics instead of retraining (supersedes -cache)")
		early    = flag.Float64("earlystop", 0, "early-stop confidence for the counterfactual tests, e.g. 0.999 (0 = full sample budget)")
		edges    = flag.String("edges", "", "edge-list file overlaying known associations onto the snapshot (\"a -> b\" directed, \"a -- b\" loose)")
		outFmt   = flag.String("o", "text", "output format: text or json (the versioned Report schema)")
		stats    = flag.Bool("stats", false, "print the per-stage timing and counter breakdown after each diagnosis")
		trace    = flag.Bool("trace", false, "stream pipeline stage and progress events to stderr as the diagnosis runs")
		listen   = flag.String("listen", "", "serve /metrics, /stats and /debug/pprof on this address while diagnosing (e.g. :6060)")
	)
	flag.Parse()
	if *snapshot == "" {
		fmt.Fprintln(os.Stderr, "murphy: -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}
	if *outFmt != "text" && *outFmt != "json" {
		fmt.Fprintf(os.Stderr, "murphy: unknown output format %q (want text or json)\n", *outFmt)
		os.Exit(2)
	}
	f, err := os.Open(*snapshot)
	if err != nil {
		fatal(err)
	}
	db, err := telemetry.ReadJSON(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *edges != "" {
		ef, err := os.Open(*edges)
		if err != nil {
			fatal(err)
		}
		list, err := graph.ParseEdgeList(ef)
		ef.Close()
		if err != nil {
			fatal(err)
		}
		if err := graph.ApplyEdgeList(db, list); err != nil {
			fatal(err)
		}
	}
	cfg := murphy.DefaultConfig()
	cfg.Samples = *samples
	cfg.TrainWindow = *window
	cfg.Timeout = *timeout

	opts := []murphy.Option{murphy.WithConfig(cfg)}
	if *workers > 1 {
		opts = append(opts, murphy.WithWorkers(*workers))
	}
	if *trainW != 0 {
		opts = append(opts, murphy.WithParallelTraining(*trainW))
	}
	sampler := murphy.SamplerConfig{Chains: *chains}
	switch *prec {
	case "float64", "f64", "":
		sampler.Precision = murphy.PrecisionFloat64
	case "float32", "f32":
		sampler.Precision = murphy.PrecisionFloat32
	default:
		fmt.Fprintf(os.Stderr, "murphy: unknown -precision %q (want float64 or float32)\n", *prec)
		os.Exit(2)
	}
	if sampler != (murphy.SamplerConfig{}) {
		opts = append(opts, murphy.WithSampler(sampler))
	}
	if *retries > 0 {
		opts = append(opts, murphy.WithResilience(murphy.Resilience{
			Retry: &murphy.RetryPolicy{MaxAttempts: *retries},
		}))
	}
	if *cache {
		opts = append(opts, murphy.WithCaching(murphy.Caching{}))
	}
	if *inctrain {
		opts = append(opts, murphy.WithIncrementalTraining(murphy.IncrementalTraining{}))
	}
	if *early > 0 {
		opts = append(opts, murphy.WithEarlyStop(*early))
	}
	if *stats || *listen != "" {
		opts = append(opts, murphy.WithStats())
	}
	if *trace {
		opts = append(opts, murphy.WithObserver(&traceObserver{out: os.Stderr}))
	}
	var symptoms []telemetry.Symptom
	switch {
	case *entity != "" && *metric != "":
		opts = append(opts, murphy.WithSeeds(telemetry.EntityID(*entity)))
		symptoms = []telemetry.Symptom{{Entity: telemetry.EntityID(*entity), Metric: *metric, High: !*low}}
	case *app != "":
		opts = append(opts, murphy.WithApp(db, *app))
	default:
		fmt.Fprintln(os.Stderr, "murphy: need either -entity and -metric, or -app")
		os.Exit(2)
	}
	sys, err := murphy.New(db, opts...)
	if err != nil {
		fatal(err)
	}
	// SIGINT/SIGTERM cancels the diagnosis context: DiagnoseBatch returns
	// its partial results promptly and the observability listener (when one
	// is up) is shut down gracefully instead of dying mid-scrape.
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	var obsSrv *http.Server
	if *listen != "" {
		obsSrv = &http.Server{Addr: *listen, Handler: sys.ObservabilityMux(true)}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "murphy: observability listener: %v\n", err)
			}
		}()
		defer func() {
			if err := serve.ShutdownHTTP(obsSrv, 5*time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "murphy: observability shutdown: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "observability endpoint on %s (/metrics, /stats, /debug/pprof)\n", *listen)
	}
	if len(symptoms) == 0 {
		symptoms = sys.FindSymptoms(*app)
		if len(symptoms) == 0 {
			fmt.Printf("no problematic symptoms found in app %q at the latest slice\n", *app)
			return
		}
		fmt.Printf("found %d problematic symptom(s) in app %q\n", len(symptoms), *app)
	}
	// One DiagnoseBatch call trains the MRF once and reuses the model (and
	// the session's subgraph/factor caches) for every symptom, instead of
	// paying the online training pass per symptom.
	items, err := sys.DiagnoseBatch(ctx, symptoms)
	if err != nil {
		fatal(err)
	}
	for _, item := range items {
		if *outFmt == "text" {
			fmt.Printf("\n=== symptom: %s ===\n", item.Symptom)
		}
		if item.Err != nil {
			fmt.Fprintf(os.Stderr, "murphy: %v\n", item.Err)
			continue
		}
		if *outFmt == "json" {
			if err := item.Report.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			printReport(db, item.Report, *topK)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "--- pipeline breakdown: %s ---\n%s", item.Symptom, sys.Stats().Table())
		}
	}
}

// printReport renders one report in the human-readable text format.
func printReport(db *telemetry.DB, report *murphy.Report, topK int) {
	if report.Partial {
		fmt.Printf("PARTIAL result: %d of %d candidates not fully evaluated\n",
			len(report.Skipped), len(report.Candidates))
	}
	if report.ReadFailures > 0 {
		fmt.Printf("%d telemetry reads failed and were treated as missing data\n", report.ReadFailures)
	}
	if len(report.Causes) == 0 {
		fmt.Println("no root cause passed the counterfactual test")
		return
	}
	for i, rc := range report.Top(topK) {
		e := db.Entity(rc.Entity)
		if rc.Degraded {
			fmt.Printf("%2d. %-40s anomaly=%.1f  DEGRADED (%s)\n", i+1, e, rc.Score, rc.Reason)
			continue
		}
		fmt.Printf("%2d. %-40s anomaly=%.1f  p=%.4f  effect=%.2f\n", i+1, e, rc.Score, rc.PValue, rc.Effect)
		if rc.Explanation != "" {
			fmt.Printf("    chain: %s\n", rc.Explanation)
		}
	}
	if len(report.RecentChanges) > 0 {
		fmt.Println("recent configuration changes in the training window:")
		for _, ev := range report.RecentChanges {
			fmt.Printf("    %s\n", ev)
		}
	}
}

// traceObserver streams pipeline events to a writer as they happen.
type traceObserver struct {
	out      *os.File
	lastDone int
}

func (o *traceObserver) StageStart(st murphy.Stage) {
	fmt.Fprintf(o.out, "[trace] %s: start\n", st)
}

func (o *traceObserver) StageEnd(st murphy.Stage, wall, cpu time.Duration) {
	fmt.Fprintf(o.out, "[trace] %s: done in %s (cpu %s)\n", st, wall.Round(time.Microsecond), cpu.Round(time.Microsecond))
}

func (o *traceObserver) Progress(st murphy.Stage, done, total int, entity string) {
	// Thin the stream: at most ~20 progress lines per stage.
	step := total / 20
	if step < 1 {
		step = 1
	}
	if done != total && done/step == o.lastDone/step {
		o.lastDone = done
		return
	}
	o.lastDone = done
	fmt.Fprintf(o.out, "[trace] %s: %d/%d (%s)\n", st, done, total, entity)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "murphy: %v\n", err)
	os.Exit(1)
}
