// Command murphyd runs Murphy as an always-on diagnosis daemon: it serves an
// HTTP/JSON ingest path that appends telemetry into the monitoring database
// as windows slide, continuously scans fresh windows for problematic
// symptoms, and feeds them (plus client-requested symptoms) through a
// bounded diagnosis queue with admission control, deadline propagation, a
// stuck-diagnosis watchdog, and crash-safe state snapshots.
//
// Usage:
//
//	murphyd -listen :8080 -state /var/lib/murphyd/state.json
//	murphyd -listen :8080 -snapshot db.json            # bootstrap telemetry
//	murphyd -listen :8080 -queue 32 -workers 4 -detect-every 10s
//	murphyd -listen :8080 -state state.json -inctrain  # amortized training
//
// Endpoints: POST /ingest, POST /diagnose, GET /reports, GET /topology,
// GET /entities/{ref}/performance, GET /healthz, GET /readyz, GET /statusz,
// plus /metrics /stats /debug/vars (and /debug/pprof with -pprof).
//
// With -reportdir, completed diagnosis reports are additionally persisted to
// an append-only, crash-safe segment file before they are acknowledged, and
// GET /reports searches the persisted store (by entity, app, cause, source,
// and time range, with cursor pagination) instead of the bounded in-memory
// ring; -report-retention caps how many reports the store keeps.
//
// On SIGINT/SIGTERM the daemon drains gracefully: readiness flips off, new
// work is shed with 503, queued and in-flight diagnoses finish (bounded by
// -drain-timeout), a final state snapshot is flushed, and the process exits
// 0. A crash instead loses at most one snapshot interval: on restart the
// daemon recovers the latest -state snapshot and resumes serving correct
// diagnoses for pre-crash symptoms.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"murphy"
	"murphy/internal/chaos"
	"murphy/internal/serve"
	"murphy/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "address to serve the daemon API on")
		snapshot = flag.String("snapshot", "", "telemetry snapshot JSON to bootstrap the database from (ignored when -state recovery succeeds)")
		state    = flag.String("state", "", "crash-safe daemon state file: recovered on boot, written every -snapshot-every and on drain (\"\" disables persistence)")
		queueCap = flag.Int("queue", 16, "diagnosis queue capacity; a full queue sheds with 429 + Retry-After")
		workers  = flag.Int("workers", 2, "diagnosis workers draining the queue")
		samples  = flag.Int("samples", 1000, "Monte-Carlo samples per counterfactual test")
		window   = flag.Int("window", 300, "online-training window (time slices)")
		deadline = flag.Duration("deadline", 30*time.Second, "default per-diagnosis deadline when the client names none")
		watchdog = flag.Duration("watchdog", 2*time.Minute, "hard per-diagnosis budget; exceeding it cancels the diagnosis and quarantines the symptom")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight work before force-cancelling")
		detect   = flag.Duration("detect-every", 15*time.Second, "continuous symptom-detector cadence (0 disables the detector)")
		snapEv   = flag.Duration("snapshot-every", 30*time.Second, "periodic state-snapshot cadence (needs -state)")
		ingestN  = flag.Int("max-ingest", 4, "concurrently applied ingest batches; excess sheds with 429")
		readsN   = flag.Int("max-reads", 16, "concurrently served operator queries (/topology, /entities, /reports); excess sheds with 429")
		repDir   = flag.String("reportdir", "", "directory for the persisted report store: completed diagnoses are appended crash-safely and GET /reports searches them across restarts (\"\" keeps the in-memory ring only)")
		repKeep  = flag.Int("report-retention", 10000, "reports retained in the persisted store before compaction drops the oldest (needs -reportdir)")
		retries  = flag.Int("retries", 0, "retry attempts for transient telemetry read faults (0 = no retry layer)")
		inctrain = flag.Bool("inctrain", false, "train incrementally: slide per-factor sufficient statistics as windows advance instead of retraining full windows; the factor store persists in the -state snapshot so warm restarts skip training")
		driftTh  = flag.Float64("drift-threshold", 0, "MASE drift score above which an incrementally maintained factor is fully refit (0 = default 4.0; needs -inctrain)")
		pprof    = flag.Bool("pprof", false, "expose /debug/pprof on the daemon mux")
		// Chaos flags drive soak drills: they inject faults into the
		// daemon's own telemetry read path so the degradation ladder is
		// exercisable against a real process.
		chaosFault   = flag.Float64("chaos-fault", 0, "probability a telemetry read fails transiently (soak drills)")
		chaosLatency = flag.Float64("chaos-latency", 0, "probability a telemetry read stalls (soak drills)")
		chaosStall   = flag.Duration("chaos-stall", 5*time.Millisecond, "injected stall duration for -chaos-latency")
		chaosCorrupt = flag.Float64("chaos-corrupt", 0, "per-value probability a read is corrupted to missing (soak drills)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "chaos injector seed")
	)
	flag.Parse()

	// Boot order: recover the latest crash-safe state snapshot if one
	// exists; otherwise fall back to the bootstrap telemetry snapshot;
	// otherwise start with an empty database fed purely by /ingest.
	var (
		db      *telemetry.DB
		restore func(*serve.Server)
	)
	if *state != "" {
		rdb, rfn, err := serve.RecoverFromDisk(*state)
		if err != nil {
			fatal(fmt.Errorf("recover state %s: %w", *state, err))
		}
		if rdb != nil {
			db, restore = rdb, rfn
			fmt.Fprintf(os.Stderr, "murphyd: recovered state from %s (%d slices)\n", *state, db.Len())
		}
	}
	if db == nil && *snapshot != "" {
		f, err := os.Open(*snapshot)
		if err != nil {
			fatal(err)
		}
		db, err = telemetry.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if db == nil {
		db = telemetry.NewDB(600)
	}

	cfg := murphy.DefaultConfig()
	cfg.Samples = *samples
	cfg.TrainWindow = *window
	sysOpts := []murphy.Option{murphy.WithConfig(cfg)}
	res := murphy.Resilience{}
	if *chaosFault > 0 || *chaosLatency > 0 || *chaosCorrupt > 0 {
		res.Source = chaos.Wrap(db, chaos.Config{
			Seed:        *chaosSeed,
			FaultRate:   *chaosFault,
			LatencyRate: *chaosLatency,
			Latency:     *chaosStall,
			CorruptRate: *chaosCorrupt,
		})
	}
	if *retries > 0 {
		res.Retry = &murphy.RetryPolicy{MaxAttempts: *retries}
	}
	if res.Source != nil || res.Retry != nil {
		sysOpts = append(sysOpts, murphy.WithResilience(res))
	}
	if *inctrain {
		sysOpts = append(sysOpts, murphy.WithIncrementalTraining(murphy.IncrementalTraining{
			DriftThreshold: *driftTh,
		}))
	}

	srv, err := serve.New(db, serve.Config{
		QueueCap:            *queueCap,
		Workers:             *workers,
		MaxConcurrentIngest: *ingestN,
		MaxConcurrentReads:  *readsN,
		ReportDir:           *repDir,
		ReportRetention:     *repKeep,
		DefaultDeadline:     *deadline,
		WatchdogTimeout:     *watchdog,
		DetectEvery:         *detect,
		SnapshotPath:        *state,
		SnapshotEvery:       *snapEv,
		DrainTimeout:        *drainTO,
		Pprof:               *pprof,
	}, sysOpts...)
	if err != nil {
		fatal(err)
	}
	if restore != nil {
		restore(srv)
	}
	srv.Start()

	hs := &http.Server{Addr: *listen, Handler: srv.Mux()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "murphyd: serving on %s (queue=%d workers=%d detect=%s state=%q)\n",
		*listen, *queueCap, *workers, *detect, *state)

	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		srv.Close()
		fatal(fmt.Errorf("listener: %w", err))
	}

	fmt.Fprintln(os.Stderr, "murphyd: signal received, draining")
	if err := srv.Drain(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "murphyd: drain: %v\n", err)
	}
	if err := serve.ShutdownHTTP(hs, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "murphyd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "murphyd: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "murphyd: %v\n", err)
	os.Exit(1)
}
