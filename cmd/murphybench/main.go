// Command murphybench regenerates the paper's tables and figures on the
// emulated environments. Each experiment prints the same rows or series the
// paper reports; -full uses paper-scale parameters (slower), the default is
// a reduced-scale run with the identical code path.
//
// Usage:
//
//	murphybench -exp all
//	murphybench -exp fig5c,table1 -full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"murphy/internal/enterprise"
	"murphy/internal/harness"
	"murphy/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments: fig5c, fig5d, table1, fig6b, fig6c, table2, fig7, fig8a, fig8b, scaling, sensitivity, cycles, fastpath, obsoverhead, trainscale, inctrain, accuracy, baselines, sweep, soak, all")
		full    = flag.Bool("full", false, "use paper-scale parameters (slow)")
		stats   = flag.Bool("stats", false, "print the accumulated per-stage timing and counter breakdown at exit")
		trace   = flag.Bool("trace", false, "stream pipeline stage events to stderr as experiments run")
		jsonOut = flag.String("json", "", "write a machine-readable benchmark report (ns/op, samples/sec, speedups) to this file, e.g. BENCH_murphy.json")
	)
	flag.Parse()
	if *stats || *trace {
		// Experiments drive the core directly; the core's instrumentation
		// falls back to the process-global recorder.
		obs.Global().Enable()
	}
	if *trace {
		obs.Global().Attach(stderrTracer{})
	}
	if *stats {
		defer func() {
			fmt.Fprintf(os.Stderr, "--- pipeline breakdown (all experiments) ---\n%s", obs.Global().Snapshot().Table())
		}()
	}
	report := newBenchReport()
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "murphybench: %v\n", err)
		os.Exit(1)
	}

	if run("fig5c", "fig5d", "fig5") {
		opts := harness.DefaultFig5Options()
		if *full {
			opts.Samples = 5000
			opts.Steps = 400
		}
		res, err := harness.RunFig5(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("table1") {
		opts := harness.DefaultTable1Options()
		if *full {
			opts.Samples = 5000
			opts.Gen.Apps = 12
			opts.Gen.Hosts = 12
		}
		res, err := harness.RunTable1(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("fig6b", "fig6c", "fig6") {
		for _, topo := range []string{"social", "hotel"} {
			if !all && !want["fig6"] {
				if topo == "social" && !want["fig6b"] {
					continue
				}
				if topo == "hotel" && !want["fig6c"] {
					continue
				}
			}
			opts := harness.DefaultFig6Options()
			opts.Topo = topo
			if *full {
				opts.Scenarios = 100
				opts.Samples = 5000
			}
			res, err := harness.RunFig6(opts)
			if err != nil {
				fail(err)
			}
			fmt.Print(res)
		}
	}
	if run("table2") {
		opts := harness.DefaultTable2Options()
		if *full {
			opts.Scenarios = 50
			opts.Samples = 5000
		}
		res, err := harness.RunTable2(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("fig7") {
		opts := harness.DefaultFig7Options()
		if *full {
			opts.Scenarios = 64
			opts.Samples = 5000
		}
		res, err := harness.RunFig7(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("fig8a") {
		opts := harness.DefaultFig8aOptions()
		if *full {
			opts.Gen.Apps = 300
			opts.Gen.Hosts = 120
			opts.Gen.MaxVMsPerTier = 3
		}
		res, err := harness.RunFig8a(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("fig8b") {
		opts := harness.DefaultFig8bOptions()
		if *full {
			opts.ScenariosPerApp = 32
			opts.Samples = 5000
		}
		res, err := harness.RunFig8b(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("scaling") {
		opts := harness.DefaultScalingOptions()
		if *full {
			opts.AppCounts = []int{4, 8, 16, 32}
		}
		res, err := harness.RunScaling(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("sensitivity") {
		opts := harness.DefaultSensitivityOptions()
		if *full {
			opts.Scenarios = 32
			opts.Samples = 5000
		}
		res, err := harness.RunSensitivity(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("fastpath") {
		opts := harness.DefaultFastPathOptions()
		if *full {
			opts.Scenarios = 12
			opts.Samples = 5000
			opts.Rounds = 3
		}
		res, err := harness.RunFastPath(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
		report.FastPath = fastPathReport(res)
	}
	if run("obsoverhead") {
		opts := harness.DefaultObsOverheadOptions()
		if *full {
			opts.Scenarios = 8
			opts.Samples = 5000
			opts.Rounds = 5
		}
		res, err := harness.RunObsOverhead(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if run("trainscale") {
		opts := harness.DefaultTrainScaleOptions()
		if *full {
			opts.Scenarios = 4
			opts.Samples = 5000
		}
		res, err := harness.RunTrainScale(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
		report.TrainScale = trainScaleReport(res)
	}
	if run("inctrain") {
		arms := []harness.IncTrainOptions{harness.DefaultIncTrainOptions()}
		if *full {
			arms[0].Steps = 520
			arms[0].Slides = 100
			arms[0].Samples = 2000
			// Enterprise-scale arms: ~18 entities per app puts these replays
			// near 1k and 10k candidate entities.
			scale1k := harness.DefaultIncTrainOptions()
			scale1k.Apps = 56
			scale1k.Slides = 8
			scale10k := harness.DefaultIncTrainOptions()
			scale10k.Apps = 560
			scale10k.Slides = 4
			arms = append(arms, scale1k, scale10k)
		}
		for _, opts := range arms {
			res, err := harness.RunIncTrain(opts)
			if err != nil {
				fail(err)
			}
			fmt.Print(res)
			report.IncTrain = append(report.IncTrain, incTrainReport(res))
			if !res.ToleranceOK || !res.CausesIdentical {
				fail(fmt.Errorf("inctrain: incremental training diverged from full retrain (max delta %.2e, causes identical %v)",
					res.MaxDelta, res.CausesIdentical))
			}
		}
	}
	if run("accuracy") {
		cases := 8
		if *full {
			cases = 32
		}
		res, err := harness.RunAccuracy(1, cases)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
		report.Accuracy = res
	}
	if run("baselines") {
		cases := 16 // matches the accguard-pinned suite (seed 1, 16 cases/family)
		if *full {
			cases = 32
		}
		res, err := harness.RunBaselines(1, cases)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
		report.Baselines = res
	}
	if run("sweep") {
		cases := 8
		if *full {
			cases = 16
		}
		res, err := harness.RunRegressorSweep(1, cases)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
		report.RegressorSweep = res
	}
	if run("soak") {
		opts := harness.DefaultSoakOptions()
		if *full {
			opts.Duration = 15 * time.Second
			opts.Samples = 1000
		}
		res, err := harness.RunSoak(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
		report.Soak = res
		if vs := res.Violations(); len(vs) > 0 {
			fail(fmt.Errorf("soak drill violated the degradation ladder: %s", strings.Join(vs, "; ")))
		}
	}
	if run("cycles") {
		gen := enterprise.DefaultGenOptions()
		gen.Apps = 8
		gen.Hosts = 8
		gen.Steps = 160
		if *full {
			gen.Apps = 40
			gen.Hosts = 30
			gen.MaxVMsPerTier = 3
		}
		res, err := harness.RunCycleStats(gen)
		if err != nil {
			fail(err)
		}
		fmt.Print(res)
	}
	if *jsonOut != "" {
		if err := writeBenchReport(*jsonOut, report); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote benchmark report to %s\n", *jsonOut)
	}
}

// stderrTracer streams stage events from the global recorder to stderr.
type stderrTracer struct{}

func (stderrTracer) StageStart(st obs.Stage) {
	fmt.Fprintf(os.Stderr, "[trace] %s: start\n", st)
}

func (stderrTracer) StageEnd(st obs.Stage, wall, cpu time.Duration) {
	fmt.Fprintf(os.Stderr, "[trace] %s: done in %s (cpu %s)\n", st, wall.Round(time.Microsecond), cpu.Round(time.Microsecond))
}

func (stderrTracer) Progress(obs.Stage, int, int, string) {}
