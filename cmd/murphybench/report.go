// Machine-readable benchmark reporting (-json): murphybench serializes the
// perf-relevant experiment results into one artifact (BENCH_murphy.json) so
// the repo carries a comparable perf trajectory across commits.
package main

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"murphy/internal/harness"
)

// benchReport is the top-level -json document. Experiments that did not run
// are omitted, so a partial run still yields a valid report.
type benchReport struct {
	Schema      int              `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	FastPath    *fastPathJSON    `json:"fastpath,omitempty"`
	TrainScale  []trainScaleJSON `json:"trainscale,omitempty"`
	// IncTrain is the sliding-window incremental-training replay: steady-state
	// train cost of full retrains vs slid sufficient statistics, with the
	// factor-equivalence and identical-causes evidence. The base replay
	// always runs; -full adds the enterprise-scale arms.
	IncTrain []incTrainJSON `json:"inctrain,omitempty"`
	// Accuracy is the fuzzed-suite diagnosis accuracy (the same numbers
	// cmd/accguard pins against testdata/acc_baseline.json).
	Accuracy *harness.AccuracyResult `json:"accuracy,omitempty"`
	// Baselines is the comparative accuracy of Murphy vs NetMedic /
	// ExplainIt / Sage over the fuzzed suite (per-method columns accguard
	// pins: Murphy gated, baselines tracked).
	Baselines *harness.BaselinesResult `json:"baselines,omitempty"`
	// RegressorSweep is the end-to-end Fig 8a sweep: Murphy's accuracy with
	// each candidate factor regressor swapped into the training path.
	RegressorSweep *harness.RegressorSweepResult `json:"regressor_sweep,omitempty"`
	// Soak is the chaos soak drill of the always-on daemon (shed rates,
	// queue high-water, latency percentiles, degradation-ladder evidence).
	Soak *harness.SoakResult `json:"soak,omitempty"`
}

// fastPathJSON summarizes the fastpath A/B experiment.
type fastPathJSON struct {
	Diagnoses         int     `json:"diagnoses"`
	BaselineMs        float64 `json:"baseline_ms"`
	CacheOnlyMs       float64 `json:"cache_only_ms"`
	FastMs            float64 `json:"fast_ms"`
	Speedup           float64 `json:"speedup"`
	RankingsIdentical bool    `json:"rankings_identical"`
	Top1Identical     bool    `json:"top1_identical"`
	BaselineSamples   int     `json:"baseline_samples"`
	FastSamples       int     `json:"fast_samples"`
	// Kernel throughput A/B: the float32 batched kernel against the
	// bit-stable float64 baseline, as raw Monte-Carlo draws per second of
	// diagnosis wall time.
	F32Ms                 float64 `json:"f32_ms"`
	BaselineSamplesPerSec float64 `json:"baseline_samples_per_sec"`
	F32SamplesPerSec      float64 `json:"f32_samples_per_sec"`
	KernelSpeedup         float64 `json:"kernel_speedup"`
	F32CausesIdentical    bool    `json:"f32_causes_identical"`
}

// trainScaleJSON is one (workers, chains) point of the trainscale sweep.
type trainScaleJSON struct {
	Workers           int     `json:"workers"`
	Chains            int     `json:"chains"`
	TrainMs           float64 `json:"train_ms"`
	DiagnoseMs        float64 `json:"diagnose_ms"`
	NsPerDiagnose     int64   `json:"ns_per_diagnose"`
	SamplesPerSec     float64 `json:"samples_per_sec"`
	SpeedupVsSerial   float64 `json:"speedup_vs_serial"`
	RankingsIdentical bool    `json:"rankings_identical"`
	BitIdentical      bool    `json:"bit_identical"`
}

// incTrainJSON summarizes one incremental-training replay arm.
type incTrainJSON struct {
	Apps            int     `json:"apps,omitempty"`
	Entities        int     `json:"entities"`
	Slides          int     `json:"slides"`
	Factors         int     `json:"factors"`
	FullMs          float64 `json:"full_ms"`
	IncrementalMs   float64 `json:"incremental_ms"`
	NsPerSlideFull  int64   `json:"ns_per_slide_full"`
	NsPerSlideInc   int64   `json:"ns_per_slide_incremental"`
	AnchorMs        float64 `json:"anchor_ms"`
	Speedup         float64 `json:"speedup"`
	MaxFactorDelta  float64 `json:"max_factor_delta"`
	ToleranceOK     bool    `json:"tolerance_ok"`
	CausesIdentical bool    `json:"causes_identical"`
	Hits            uint64  `json:"hits"`
	Refits          uint64  `json:"refits"`
	Reselects       uint64  `json:"reselects"`
	DriftTrips      uint64  `json:"drift_trips"`
}

func newBenchReport() *benchReport {
	return &benchReport{
		Schema:      1,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
}

func fastPathReport(r *harness.FastPathResult) *fastPathJSON {
	return &fastPathJSON{
		Diagnoses:         r.Diagnoses,
		BaselineMs:        float64(r.BaselineTime) / float64(time.Millisecond),
		CacheOnlyMs:       float64(r.CacheOnlyTime) / float64(time.Millisecond),
		FastMs:            float64(r.FastTime) / float64(time.Millisecond),
		Speedup:           r.Speedup,
		RankingsIdentical: r.RankingsIdentical,
		Top1Identical:     r.Top1Identical,
		BaselineSamples:   r.BaselineSamples,
		FastSamples:       r.FastSamples,

		F32Ms:                 float64(r.F32Time) / float64(time.Millisecond),
		BaselineSamplesPerSec: r.BaselineSamplesPerSec,
		F32SamplesPerSec:      r.F32SamplesPerSec,
		KernelSpeedup:         r.KernelSpeedup,
		F32CausesIdentical:    r.F32CausesIdentical,
	}
}

func trainScaleReport(r *harness.TrainScaleResult) []trainScaleJSON {
	out := make([]trainScaleJSON, 0, len(r.Points))
	for _, p := range r.Points {
		pt := trainScaleJSON{
			Workers:           p.Workers,
			Chains:            p.Chains,
			TrainMs:           float64(p.TrainTime) / float64(time.Millisecond),
			DiagnoseMs:        float64(p.DiagTime) / float64(time.Millisecond),
			SamplesPerSec:     p.SamplesPerSec,
			SpeedupVsSerial:   p.Speedup,
			RankingsIdentical: p.RankingsIdentical,
			BitIdentical:      p.BitIdentical,
		}
		if r.Opts.Scenarios > 0 {
			pt.NsPerDiagnose = (p.TrainTime + p.DiagTime).Nanoseconds() / int64(r.Opts.Scenarios)
		}
		out = append(out, pt)
	}
	return out
}

func incTrainReport(r *harness.IncTrainResult) incTrainJSON {
	out := incTrainJSON{
		Apps:            r.Opts.Apps,
		Entities:        r.Entities,
		Slides:          r.Opts.Slides,
		Factors:         r.Factors,
		FullMs:          float64(r.FullTime) / float64(time.Millisecond),
		IncrementalMs:   float64(r.IncTime) / float64(time.Millisecond),
		AnchorMs:        float64(r.AnchorTime) / float64(time.Millisecond),
		Speedup:         r.Speedup,
		MaxFactorDelta:  r.MaxDelta,
		ToleranceOK:     r.ToleranceOK,
		CausesIdentical: r.CausesIdentical,
		Hits:            r.Hits,
		Refits:          r.Refits,
		Reselects:       r.Reselects,
		DriftTrips:      r.DriftTrips,
	}
	if r.Opts.Slides > 0 {
		out.NsPerSlideFull = r.FullTime.Nanoseconds() / int64(r.Opts.Slides)
		out.NsPerSlideInc = r.IncTime.Nanoseconds() / int64(r.Opts.Slides)
	}
	return out
}

// writeBenchReport writes the report as indented JSON (trailing newline, so
// the artifact diffs cleanly when checked in).
func writeBenchReport(path string, r *benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
