// Command murphygen generates telemetry snapshots for cmd/murphy and for
// offline experimentation: either an enterprise environment with one of the
// 13 Table-1 incidents injected, or a DeathStarBench-style microservice
// scenario (performance interference or resource contention).
//
// Usage:
//
//	murphygen -kind enterprise -incident 2 -out db.json
//	murphygen -kind interference -out db.json
//	murphygen -kind contention -topo social -out db.json
package main

import (
	"flag"
	"fmt"
	"os"

	"murphy/internal/enterprise"
	"murphy/internal/microsim"
	"murphy/internal/telemetry"
	"murphy/internal/tracing"
)

func main() {
	var (
		kind     = flag.String("kind", "enterprise", "dataset kind: enterprise, interference, contention, metrics, traces")
		incident = flag.Int("incident", 2, "enterprise incident index 1-13 (0 = no incident)")
		topo     = flag.String("topo", "hotel", "microservice topology: hotel or social")
		apps     = flag.Int("apps", 8, "number of enterprise applications")
		steps    = flag.Int("steps", 320, "time slices to simulate")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "-", "output path (default stdout)")
	)
	flag.Parse()

	var db *telemetry.DB
	switch *kind {
	case "enterprise":
		gen := enterprise.DefaultGenOptions()
		gen.Apps = *apps
		gen.Steps = *steps
		gen.Seed = *seed
		gen.Hosts = *apps
		if *incident == 0 {
			env, err := enterprise.Generate(gen)
			if err != nil {
				fatal(err)
			}
			if err := env.Run(); err != nil {
				fatal(err)
			}
			db = env.DB
		} else {
			env, inc, err := enterprise.RunIncident(gen, enterprise.ByIndex(*incident))
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "incident %d: %s\n  symptom: %s\n  ground truth: %v\n",
				inc.Index, inc.Name, inc.Symptom, inc.Truth)
			db = env.DB
		}
	case "metrics":
		gen := enterprise.DefaultGenOptions()
		gen.Apps = *apps
		gen.Steps = *steps
		gen.Seed = *seed
		gen.Hosts = *apps
		env, err := enterprise.Generate(gen)
		if err != nil {
			fatal(err)
		}
		if err := env.Run(); err != nil {
			fatal(err)
		}
		db = env.DB
	case "interference":
		opts := microsim.DefaultInterferenceOptions()
		opts.Steps = *steps
		opts.Seed = *seed
		sc, err := microsim.Interference(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scenario %s\n  symptom: %s\n  ground truth: %s\n", sc.Name, sc.Symptom, sc.TruthEntity)
		db = sc.Result.DB
	case "contention":
		opts := microsim.DefaultContentionOptions()
		opts.Topo = *topo
		opts.Steps = *steps
		opts.Seed = *seed
		sc, err := microsim.Contention(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scenario %s\n  symptom: %s\n  ground truth: %s\n", sc.Name, sc.Symptom, sc.TruthEntity)
		db = sc.Result.DB
	case "traces":
		// The DeathStarBench trace dataset: run a contention scenario and
		// export its Jaeger-style request traces (one JSON array of traces).
		opts := microsim.DefaultContentionOptions()
		opts.Topo = *topo
		opts.Steps = *steps
		opts.Seed = *seed
		sc, err := microsim.Contention(opts)
		if err != nil {
			fatal(err)
		}
		store := tracing.NewStore(0.5)
		n, err := sc.EmitTraces(store, 4, *seed)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := store.WriteJSON(w); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d sampled traces (%d dropped by sampling)\n", n, store.Dropped())
		return
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := db.WriteJSON(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d entities, %d time slices\n", db.NumEntities(), db.Len())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "murphygen: %v\n", err)
	os.Exit(1)
}
