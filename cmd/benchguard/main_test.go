package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
BenchmarkCoreDiagnose-8 	       1	20672403 ns/op
BenchmarkGibbsKernel/float64-8 	      50	63750994 ns/op	   2258789 samples/sec
BenchmarkGibbsKernel/float32-8 	      50	12459799 ns/op	  11557179 samples/sec	       5 extra/op
PASS
`

func TestParseBenchUnits(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	d := got["BenchmarkCoreDiagnose"]
	if d["ns/op"] != 20672403 {
		t.Errorf("CoreDiagnose ns/op = %v, want 20672403", d["ns/op"])
	}
	if _, ok := d["samples/sec"]; ok {
		t.Errorf("CoreDiagnose should have no samples/sec metric")
	}
	k := got["BenchmarkGibbsKernel/float32"]
	if k["ns/op"] != 12459799 {
		t.Errorf("GibbsKernel/float32 ns/op = %v, want 12459799", k["ns/op"])
	}
	if k["samples/sec"] != 11557179 {
		t.Errorf("GibbsKernel/float32 samples/sec = %v, want 11557179", k["samples/sec"])
	}
	if _, ok := k["extra/op"]; ok {
		t.Errorf("unguarded unit extra/op should be ignored")
	}
}

func TestCompareDirections(t *testing.T) {
	base := map[string]metrics{
		"BenchmarkA": {"ns/op": 100, "samples/sec": 1000},
	}
	cases := []struct {
		name   string
		cur    metrics
		failed int
	}{
		{"unchanged", metrics{"ns/op": 100, "samples/sec": 1000}, 0},
		// ns/op is lower-is-better: 3x slower is within a 4x tolerance,
		// 5x slower is not.
		{"slower-within", metrics{"ns/op": 300, "samples/sec": 1000}, 0},
		{"slower-beyond", metrics{"ns/op": 500, "samples/sec": 1000}, 1},
		// samples/sec is higher-is-better: halving is within tolerance,
		// an 8x throughput drop fails; an 8x *gain* never fails.
		{"throughput-within", metrics{"ns/op": 100, "samples/sec": 500}, 0},
		{"throughput-beyond", metrics{"ns/op": 100, "samples/sec": 125}, 1},
		{"throughput-gain", metrics{"ns/op": 100, "samples/sec": 8000}, 0},
		// Both directions regressing counts each metric.
		{"both-regress", metrics{"ns/op": 500, "samples/sec": 125}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			got := compare(&sb, base, map[string]metrics{"BenchmarkA": tc.cur}, 4.0)
			if got != tc.failed {
				t.Errorf("compare = %d failures, want %d\n%s", got, tc.failed, sb.String())
			}
		})
	}
}

func TestCompareOneSided(t *testing.T) {
	base := map[string]metrics{
		"BenchmarkOld": {"ns/op": 100},
		"BenchmarkB":   {"ns/op": 100},
	}
	cur := map[string]metrics{
		"BenchmarkNew": {"ns/op": 1e9, "samples/sec": 1},
		"BenchmarkB":   {"ns/op": 100, "samples/sec": 1}, // new metric on known bench
	}
	var sb strings.Builder
	if got := compare(&sb, base, cur, 4.0); got != 0 {
		t.Errorf("one-sided benchmarks/metrics must never fail, got %d failures\n%s", got, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"new", "missing", "BenchmarkOld", "BenchmarkNew"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	parsed, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/baseline.txt"
	if err := writeBaseline(path, parsed); err != nil {
		t.Fatal(err)
	}
	back, err := readBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(parsed) {
		t.Fatalf("round trip lost benchmarks: %d -> %d", len(parsed), len(back))
	}
	for name, m := range parsed {
		for u, v := range m {
			if back[name][u] != v {
				t.Errorf("%s %s = %v after round trip, want %v", name, u, back[name][u], v)
			}
		}
	}
}
