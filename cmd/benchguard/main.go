// Command benchguard compares `go test -bench` output against a checked-in
// baseline and fails when a guarded benchmark regresses beyond a tolerance.
// It is a dependency-free stand-in for benchstat aimed at CI smoke runs: one
// iteration per benchmark, generous tolerance, hard failure only on order-of-
// magnitude slides.
//
// Usage:
//
//	go test -run '^$' -bench 'CoreDiagnose|FastPath' -benchtime 1x . | \
//	    benchguard -baseline testdata/bench_baseline.txt -tolerance 4.0
//
//	benchguard -baseline testdata/bench_baseline.txt -input bench.txt -update
//
// The baseline file is the raw benchmark output format ("BenchmarkName N
// ns/op"); -update rewrites it from the current input instead of comparing.
// Benchmarks present on only one side are reported but never fail the run, so
// adding or retiring benchmarks does not require touching the guard.
//
// Two metric classes are guarded. ns/op is lower-is-better: the guard fails
// when current exceeds baseline by more than the tolerance factor. Throughput
// metrics (samples/sec, reported by the Gibbs-kernel benchmarks via
// b.ReportMetric) are higher-is-better: the guard fails when current falls
// below baseline divided by the tolerance factor. Other custom metrics are
// ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// guardedUnits maps each guarded metric unit to its comparison direction.
var guardedUnits = map[string]bool{
	"ns/op":       false, // lower is better
	"samples/sec": true,  // higher is better
}

func main() {
	var (
		baseline  = flag.String("baseline", "testdata/bench_baseline.txt", "baseline benchmark output to compare against")
		input     = flag.String("input", "-", "current benchmark output ('-' = stdin)")
		tolerance = flag.Float64("tolerance", 4.0, "fail when a metric regresses beyond this factor (slower ns/op, lower samples/sec)")
		update    = flag.Bool("update", false, "rewrite the baseline from the current input instead of comparing")
	)
	flag.Parse()

	cur, err := readBench(*input)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark lines in %s", *input))
	}
	if *update {
		if err := writeBaseline(*baseline, cur); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(cur), *baseline)
		return
	}
	base, err := readBenchFile(*baseline)
	if err != nil {
		fatal(err)
	}
	failed := compare(os.Stdout, base, cur, *tolerance)
	if failed > 0 {
		fatal(fmt.Errorf("%d metric(s) regressed beyond %.1fx", failed, *tolerance))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
	os.Exit(1)
}

// metrics is one benchmark's guarded measurements, keyed by unit.
type metrics map[string]float64

// parseBench extracts "BenchmarkX-N  iters  <value> <unit> ..." rows from
// benchmark output, keeping every guarded unit on the line (ns/op plus custom
// metrics like samples/sec). The CPU-count suffix (-8) is stripped so
// baselines transfer across runners.
func parseBench(r io.Reader) (map[string]metrics, error) {
	out := map[string]metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var m metrics
		for i := 2; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			if _, guarded := guardedUnits[unit]; !guarded {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q on %q", unit, fields[i], sc.Text())
			}
			if m == nil {
				m = metrics{}
			}
			m[unit] = v
		}
		if m == nil {
			continue
		}
		name := fields[0]
		if cut := strings.LastIndex(name, "-"); cut > 0 {
			if _, err := strconv.Atoi(name[cut+1:]); err == nil {
				name = name[:cut]
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func readBench(path string) (map[string]metrics, error) {
	if path == "-" {
		return parseBench(os.Stdin)
	}
	return readBenchFile(path)
}

func readBenchFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func writeBaseline(path string, benches map[string]metrics) error {
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# benchguard baseline: single-iteration guarded metrics per benchmark.\n")
	b.WriteString("# Regenerate: go test -run '^$' -bench <pattern> -benchtime 1x . | benchguard -update -baseline <this file>\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%s 1", n)
		units := make([]string, 0, len(benches[n]))
		for u := range benches[n] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(&b, " %.0f %s", benches[n][u], u)
		}
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// compare prints one row per (benchmark, metric) and returns how many
// regressed: ns/op fails above tolerance, higher-is-better metrics fail below
// 1/tolerance.
func compare(w io.Writer, base, cur map[string]metrics, tolerance float64) int {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	failed := 0
	for _, n := range names {
		bm, ok := base[n]
		if !ok {
			for _, u := range sortedUnits(cur[n]) {
				fmt.Fprintf(w, "  new      %-55s %12.0f %s (no baseline)\n", n, cur[n][u], u)
			}
			continue
		}
		for _, u := range sortedUnits(cur[n]) {
			bv, ok := bm[u]
			if !ok {
				fmt.Fprintf(w, "  new      %-55s %12.0f %s (no baseline)\n", n, cur[n][u], u)
				continue
			}
			ratio := cur[n][u] / bv
			status := "ok"
			if guardedUnits[u] {
				// Higher is better: fail when throughput dropped by tolerance.
				if ratio < 1/tolerance {
					status = "REGRESS"
					failed++
				}
			} else if ratio > tolerance {
				status = "REGRESS"
				failed++
			}
			fmt.Fprintf(w, "  %-8s %-55s %12.0f %s vs %12.0f (%.2fx)\n", status, n, cur[n][u], u, bv, ratio)
		}
	}
	for n := range base {
		if _, ok := cur[n]; !ok {
			fmt.Fprintf(w, "  missing  %-55s (in baseline, not in current run)\n", n)
		}
	}
	return failed
}

func sortedUnits(m metrics) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}
