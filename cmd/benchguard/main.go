// Command benchguard compares `go test -bench` output against a checked-in
// baseline and fails when a guarded benchmark regresses beyond a tolerance.
// It is a dependency-free stand-in for benchstat aimed at CI smoke runs: one
// iteration per benchmark, generous tolerance, hard failure only on order-of-
// magnitude slides.
//
// Usage:
//
//	go test -run '^$' -bench 'CoreDiagnose|FastPath' -benchtime 1x . | \
//	    benchguard -baseline testdata/bench_baseline.txt -tolerance 4.0
//
//	benchguard -baseline testdata/bench_baseline.txt -input bench.txt -update
//
// The baseline file is the raw benchmark output format ("BenchmarkName N
// ns/op"); -update rewrites it from the current input instead of comparing.
// Benchmarks present on only one side are reported but never fail the run, so
// adding or retiring benchmarks does not require touching the guard.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baseline  = flag.String("baseline", "testdata/bench_baseline.txt", "baseline benchmark output to compare against")
		input     = flag.String("input", "-", "current benchmark output ('-' = stdin)")
		tolerance = flag.Float64("tolerance", 4.0, "fail when current ns/op exceeds baseline by more than this factor")
		update    = flag.Bool("update", false, "rewrite the baseline from the current input instead of comparing")
	)
	flag.Parse()

	cur, err := readBench(*input)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark lines in %s", *input))
	}
	if *update {
		if err := writeBaseline(*baseline, cur); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(cur), *baseline)
		return
	}
	base, err := readBenchFile(*baseline)
	if err != nil {
		fatal(err)
	}
	failed := compare(os.Stdout, base, cur, *tolerance)
	if failed > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed beyond %.1fx", failed, *tolerance))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
	os.Exit(1)
}

// parseBench extracts "BenchmarkX-N  iters  ns/op" rows from benchmark output.
// The CPU-count suffix (-8) is stripped so baselines transfer across runners.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Find the "ns/op" pair; custom metrics follow and are ignored.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op %q on %q", fields[i], sc.Text())
			}
			name := fields[0]
			if cut := strings.LastIndex(name, "-"); cut > 0 {
				if _, err := strconv.Atoi(name[cut+1:]); err == nil {
					name = name[:cut]
				}
			}
			out[name] = v
			break
		}
	}
	return out, sc.Err()
}

func readBench(path string) (map[string]float64, error) {
	if path == "-" {
		return parseBench(os.Stdin)
	}
	return readBenchFile(path)
}

func readBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func writeBaseline(path string, benches map[string]float64) error {
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# benchguard baseline: single-iteration ns/op per benchmark.\n")
	b.WriteString("# Regenerate: go test -run '^$' -bench <pattern> -benchtime 1x . | benchguard -update -baseline <this file>\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%s 1 %.0f ns/op\n", n, benches[n])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// compare prints one row per benchmark and returns how many regressed.
func compare(w io.Writer, base, cur map[string]float64, tolerance float64) int {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	failed := 0
	for _, n := range names {
		b, ok := base[n]
		if !ok {
			fmt.Fprintf(w, "  new      %-55s %12.0f ns/op (no baseline)\n", n, cur[n])
			continue
		}
		ratio := cur[n] / b
		status := "ok"
		if ratio > tolerance {
			status = "REGRESS"
			failed++
		}
		fmt.Fprintf(w, "  %-8s %-55s %12.0f ns/op vs %12.0f (%.2fx)\n", status, n, cur[n], b, ratio)
	}
	for n := range base {
		if _, ok := cur[n]; !ok {
			fmt.Fprintf(w, "  missing  %-55s (in baseline, not in current run)\n", n)
		}
	}
	return failed
}
