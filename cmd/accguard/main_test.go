package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"murphy/internal/harness"
)

// noEnv is a getenv that sees an empty environment.
func noEnv(string) string { return "" }

// fakeResult builds a small comparative result with the given Murphy and
// NetMedic precisions (all other metrics pinned at the precision value).
func fakeResult(murphyPrec, netmedicPrec float64) *harness.BaselinesResult {
	acc := func(p float64) harness.FamilyAccuracy {
		return harness.FamilyAccuracy{Cases: 4, Precision: p, Top1: p, Top3: p, Top5: p}
	}
	return &harness.BaselinesResult{
		Seed:           1,
		CasesPerFamily: 4,
		Methods: map[string]map[string]harness.FamilyAccuracy{
			harness.SchemeMurphy:   {"cascade": acc(murphyPrec), "confounder": acc(murphyPrec)},
			harness.SchemeNetMedic: {"cascade": acc(netmedicPrec), "confounder": acc(netmedicPrec)},
		},
	}
}

// writeJSON writes a result to dir/name and returns the path.
func writeJSON(t *testing.T, dir, name string, r *harness.BaselinesResult) string {
	t.Helper()
	data, err := r.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// guard runs accguard with a checked-in baseline and a precomputed current
// run (-current skips the expensive suite rerun) and returns the exit code
// plus combined output.
func guard(t *testing.T, getenv func(string) string, args ...string) (int, string) {
	t.Helper()
	var out bytes.Buffer
	code := run(args, getenv, &out, &out)
	return code, out.String()
}

// TestExitZeroWhenIdentical: a current run identical to the baseline passes.
func TestExitZeroWhenIdentical(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", fakeResult(0.9, 0.5))
	cur := writeJSON(t, dir, "cur.json", fakeResult(0.9, 0.5))
	code, out := guard(t, noEnv, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("exit %d on identical run, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "within tolerance") {
		t.Errorf("missing pass banner:\n%s", out)
	}
}

// TestExitOneOnMurphyRegression: an artificially lowered Murphy row beyond
// tolerance must fail the run.
func TestExitOneOnMurphyRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", fakeResult(0.9, 0.5))
	cur := writeJSON(t, dir, "cur.json", fakeResult(0.7, 0.5))
	code, out := guard(t, noEnv, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("exit %d on Murphy regression, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESS") {
		t.Errorf("missing REGRESS marker:\n%s", out)
	}
}

// TestExitZeroOnBaselineDrift: baseline methods may move arbitrarily in
// either direction — reported as drift, never gated.
func TestExitZeroOnBaselineDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", fakeResult(0.9, 0.5))
	for _, nm := range []float64{0.1, 0.95} {
		cur := writeJSON(t, dir, "cur.json", fakeResult(0.9, nm))
		code, out := guard(t, noEnv, "-baseline", base, "-current", cur)
		if code != 0 {
			t.Fatalf("exit %d on NetMedic-only drift to %.2f, want 0\n%s", code, nm, out)
		}
		if !strings.Contains(out, "drift") {
			t.Errorf("NetMedic drift to %.2f not reported:\n%s", nm, out)
		}
	}
}

// TestSmallDropsWithinTolerance: Murphy may move within tolerance.
func TestSmallDropsWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", fakeResult(0.9, 0.5))
	cur := writeJSON(t, dir, "cur.json", fakeResult(0.87, 0.5))
	code, out := guard(t, noEnv, "-baseline", base, "-current", cur, "-tolerance", "0.05")
	if code != 0 {
		t.Fatalf("exit %d on within-tolerance drop, want 0\n%s", code, out)
	}
}

// TestUpdateRoundTripsSchema: -update (and the UPDATE_ACC_BASELINE=1 env
// form) rewrites the baseline in the per-method schema, and the written file
// parses back identical.
func TestUpdateRoundTripsSchema(t *testing.T) {
	dir := t.TempDir()
	want := fakeResult(0.9, 0.5)
	cur := writeJSON(t, dir, "cur.json", want)
	for name, env := range map[string]struct {
		getenv func(string) string
		args   []string
	}{
		"flag": {noEnv, []string{"-update"}},
		"env": {func(k string) string {
			if k == "UPDATE_ACC_BASELINE" {
				return "1"
			}
			return ""
		}, nil},
	} {
		base := filepath.Join(dir, name+"_base.json")
		args := append([]string{"-baseline", base, "-current", cur}, env.args...)
		code, out := guard(t, env.getenv, args...)
		if code != 0 {
			t.Fatalf("%s: exit %d on -update, want 0\n%s", name, code, out)
		}
		data, err := os.ReadFile(base)
		if err != nil {
			t.Fatalf("%s: baseline not written: %v", name, err)
		}
		got, err := harness.ParseBaselines(data)
		if err != nil {
			t.Fatalf("%s: written baseline does not parse: %v", name, err)
		}
		for method, fams := range want.Methods {
			for fam, acc := range fams {
				if got.Methods[method][fam] != acc {
					t.Errorf("%s: %s/%s round-trip mismatch: %+v vs %+v", name, method, fam, got.Methods[method][fam], acc)
				}
			}
		}
	}
}

// TestLegacyBaselineUpgrades: the pre-comparative Murphy-only schema still
// gates Murphy (lowered row fails) when compared against a new-schema run.
func TestLegacyBaselineUpgrades(t *testing.T) {
	dir := t.TempDir()
	legacy := []byte(`{"seed":1,"cases_per_family":4,"families":{"cascade":{"cases":4,"precision":0.9,"top1":0.9,"top3":0.9,"top5":0.9},"confounder":{"cases":4,"precision":0.9,"top1":0.9,"top3":0.9,"top5":0.9}}}`)
	base := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(base, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	cur := writeJSON(t, dir, "cur.json", fakeResult(0.7, 0.5))
	code, out := guard(t, noEnv, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("exit %d on regression vs legacy baseline, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESS") {
		t.Errorf("missing REGRESS marker:\n%s", out)
	}
}
