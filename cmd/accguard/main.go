// Command accguard is the CI accuracy guard: it reruns the fuzzed scenario
// suite, compares the diagnosis precision/recall per scenario family against
// the checked-in baseline, and exits non-zero on any drop beyond tolerance.
// It is the accuracy-side sibling of benchguard: benchguard catches latency
// regressions, accguard catches the silent kind — a change that keeps every
// test green while degrading who gets blamed for incidents.
//
// Usage:
//
//	accguard -baseline testdata/acc_baseline.json -report acc_report.json
//	accguard -update               # rewrite the baseline from a fresh run
//	UPDATE_ACC_BASELINE=1 accguard # same, for CI-style invocation
//
// The suite is deterministic: the baseline records its base seed and suite
// size, and the comparison run replays exactly those cases, so any diff is a
// code change, never sampling noise. Improvements never fail the run; the
// printed table shows them so the baseline can be ratcheted with -update.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"murphy/internal/harness"
)

func main() {
	var (
		baseline  = flag.String("baseline", "testdata/acc_baseline.json", "baseline accuracy file to compare against")
		report    = flag.String("report", "", "also write the current run's accuracy JSON here (acc_report.json in CI)")
		seed      = flag.Int64("seed", 1, "base seed of the fuzzed suite (used only with -update or a missing baseline)")
		cases     = flag.Int("cases", 16, "cases per scenario family (used only with -update or a missing baseline)")
		tolerance = flag.Float64("tolerance", 0.05, "maximum allowed drop per metric (absolute)")
		update    = flag.Bool("update", false, "rewrite the baseline from a fresh run instead of comparing")
	)
	flag.Parse()
	if os.Getenv("UPDATE_ACC_BASELINE") == "1" {
		*update = true
	}

	if *update {
		cur, err := harness.RunAccuracy(*seed, *cases)
		if err != nil {
			fatal(err)
		}
		if err := writeResult(*baseline, cur); err != nil {
			fatal(err)
		}
		writeReport(*report, cur)
		fmt.Printf("accguard: wrote baseline %s (seed=%d, %d cases/family)\n%s", *baseline, cur.Seed, cur.CasesPerFamily, cur)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(fmt.Errorf("%w (run with -update to create it)", err))
	}
	// Replay exactly the baseline's suite: same seed, same size.
	cur, err := harness.RunAccuracy(base.Seed, base.CasesPerFamily)
	if err != nil {
		fatal(err)
	}
	writeReport(*report, cur)
	fmt.Print(cur)
	failed := compare(base, cur, *tolerance)
	if failed > 0 {
		fatal(fmt.Errorf("%d accuracy metric(s) dropped more than %.3f below baseline", failed, *tolerance))
	}
	fmt.Println("accguard: accuracy within tolerance of baseline")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "accguard: %v\n", err)
	os.Exit(1)
}

func readBaseline(path string) (*harness.AccuracyResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return harness.ParseAccuracy(data)
}

func writeResult(path string, r *harness.AccuracyResult) error {
	data, err := r.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func writeReport(path string, r *harness.AccuracyResult) {
	if path == "" {
		return
	}
	if err := writeResult(path, r); err != nil {
		fatal(err)
	}
}

// compare prints one row per (family, metric) and returns how many dropped
// beyond tolerance. Families present on only one side are reported but never
// fail the run, so adding a scenario family does not require touching the
// guard.
func compare(base, cur *harness.AccuracyResult, tolerance float64) int {
	fams := make([]string, 0, len(base.Families))
	for fam := range base.Families {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	failed := 0
	for _, fam := range fams {
		b := base.Families[fam]
		c, ok := cur.Families[fam]
		if !ok {
			fmt.Printf("  missing  %-15s (in baseline, not in current suite)\n", fam)
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur float64
		}{
			{"precision", b.Precision, c.Precision},
			{"top1", b.Top1, c.Top1},
			{"top3", b.Top3, c.Top3},
			{"top5", b.Top5, c.Top5},
		} {
			status := "ok"
			if m.cur < m.base-tolerance {
				status = "REGRESS"
				failed++
			}
			fmt.Printf("  %-8s %-15s %-9s %.3f vs %.3f baseline\n", status, fam, m.name, m.cur, m.base)
		}
	}
	for fam := range cur.Families {
		if _, ok := base.Families[fam]; !ok {
			fmt.Printf("  new      %-15s (no baseline row)\n", fam)
		}
	}
	return failed
}
