// Command accguard is the CI accuracy guard: it reruns the fuzzed scenario
// suite with every diagnosis method (Murphy plus the NetMedic / ExplainIt /
// Sage baselines), compares per-method per-family precision/top-k against the
// checked-in baseline, and exits non-zero when *Murphy* drops beyond
// tolerance. Baseline-method drift is printed so reviewers see it, but never
// fails the run — the guard gates the system under development, not the
// comparison points. It is the accuracy-side sibling of benchguard:
// benchguard catches latency regressions, accguard catches the silent kind —
// a change that keeps every test green while degrading who gets blamed for
// incidents.
//
// Usage:
//
//	accguard -baseline testdata/acc_baseline.json -report acc_report.json
//	accguard -update               # rewrite the baseline from a fresh run
//	UPDATE_ACC_BASELINE=1 accguard # same, for CI-style invocation
//	accguard -current report.json  # compare a precomputed run instead of rerunning
//
// The suite is deterministic: the baseline records its base seed and suite
// size, and the comparison run replays exactly those cases, so any diff is a
// code change, never sampling noise. Improvements never fail the run; the
// printed table shows them so the baseline can be ratcheted with -update.
// Legacy Murphy-only baselines (the pre-comparative `families` schema) are
// still parsed; -update migrates them to the per-method schema.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"murphy/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Getenv, os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the exit-code contract is
// unit-testable: 0 within tolerance, 1 on a Murphy regression (or any error),
// 2 on a flag error.
func run(args []string, getenv func(string) string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("accguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "testdata/acc_baseline.json", "baseline accuracy file to compare against")
		report    = fs.String("report", "", "also write the current run's accuracy JSON here (acc_report.json in CI)")
		seed      = fs.Int64("seed", 1, "base seed of the fuzzed suite (used only with -update or a missing baseline)")
		cases     = fs.Int("cases", 16, "cases per scenario family (used only with -update or a missing baseline)")
		tolerance = fs.Float64("tolerance", 0.05, "maximum allowed Murphy drop per metric (absolute)")
		update    = fs.Bool("update", false, "rewrite the baseline from a fresh run instead of comparing")
		current   = fs.String("current", "", "read the current run from this JSON file instead of rerunning the suite")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if getenv("UPDATE_ACC_BASELINE") == "1" {
		*update = true
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "accguard: %v\n", err)
		return 1
	}
	runSuite := func(seed int64, cases int) (*harness.BaselinesResult, error) {
		if *current != "" {
			data, err := os.ReadFile(*current)
			if err != nil {
				return nil, err
			}
			return harness.ParseBaselines(data)
		}
		return harness.RunBaselines(seed, cases)
	}

	if *update {
		cur, err := runSuite(*seed, *cases)
		if err != nil {
			return fail(err)
		}
		if err := writeResult(*baseline, cur); err != nil {
			return fail(err)
		}
		if err := writeReport(*report, cur); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "accguard: wrote baseline %s (seed=%d, %d cases/family)\n%s", *baseline, cur.Seed, cur.CasesPerFamily, cur)
		return 0
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		return fail(fmt.Errorf("%w (run with -update to create it)", err))
	}
	// Replay exactly the baseline's suite: same seed, same size.
	cur, err := runSuite(base.Seed, base.CasesPerFamily)
	if err != nil {
		return fail(err)
	}
	if err := writeReport(*report, cur); err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, cur)
	failed := compare(stdout, base, cur, *tolerance)
	if failed > 0 {
		return fail(fmt.Errorf("%d Murphy accuracy metric(s) dropped more than %.3f below baseline", failed, *tolerance))
	}
	fmt.Fprintln(stdout, "accguard: Murphy accuracy within tolerance of baseline")
	return 0
}

func readBaseline(path string) (*harness.BaselinesResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return harness.ParseBaselines(data)
}

func writeResult(path string, r *harness.BaselinesResult) error {
	data, err := r.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func writeReport(path string, r *harness.BaselinesResult) error {
	if path == "" {
		return nil
	}
	return writeResult(path, r)
}

// compare prints one row per (method, family, metric) and returns how many
// *Murphy* metrics dropped beyond tolerance. Baseline methods get a "drift"
// marker when they moved beyond tolerance in either direction, which tracks
// them in review without gating them. Methods or families present on only
// one side are reported but never fail the run, so adding a scheme or a
// scenario family does not require touching the guard.
func compare(w io.Writer, base, cur *harness.BaselinesResult, tolerance float64) int {
	failed := 0
	for _, method := range methodOrder(base.Methods, cur.Methods) {
		bFams, inBase := base.Methods[method]
		cFams, inCur := cur.Methods[method]
		switch {
		case !inBase:
			fmt.Fprintf(w, "  new      %-10s (no baseline rows)\n", method)
			continue
		case !inCur:
			fmt.Fprintf(w, "  missing  %-10s (in baseline, not in current run)\n", method)
			continue
		}
		fams := make([]string, 0, len(bFams))
		for fam := range bFams {
			fams = append(fams, fam)
		}
		sort.Strings(fams)
		for _, fam := range fams {
			b := bFams[fam]
			c, ok := cFams[fam]
			if !ok {
				fmt.Fprintf(w, "  missing  %-10s %-15s (in baseline, not in current suite)\n", method, fam)
				continue
			}
			for _, m := range []struct {
				name      string
				base, cur float64
			}{
				{"precision", b.Precision, c.Precision},
				{"top1", b.Top1, c.Top1},
				{"top3", b.Top3, c.Top3},
				{"top5", b.Top5, c.Top5},
			} {
				status := "ok"
				if method == harness.SchemeMurphy {
					if m.cur < m.base-tolerance {
						status = "REGRESS"
						failed++
					}
				} else if math.Abs(m.cur-m.base) > tolerance {
					status = "drift"
				}
				fmt.Fprintf(w, "  %-8s %-10s %-15s %-9s %.3f vs %.3f baseline\n", status, method, fam, m.name, m.cur, m.base)
			}
		}
		for fam := range cFams {
			if _, ok := bFams[fam]; !ok {
				fmt.Fprintf(w, "  new      %-10s %-15s (no baseline row)\n", method, fam)
			}
		}
	}
	return failed
}

// methodOrder merges both sides' method names: the fixed Schemes order
// first, then any extras alphabetically.
func methodOrder(a, b map[string]map[string]harness.FamilyAccuracy) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range harness.Schemes {
		if _, ok := a[s]; !ok {
			if _, ok := b[s]; !ok {
				continue
			}
		}
		out = append(out, s)
		seen[s] = true
	}
	var extra []string
	for m := range a {
		if !seen[m] {
			seen[m] = true
			extra = append(extra, m)
		}
	}
	for m := range b {
		if !seen[m] {
			seen[m] = true
			extra = append(extra, m)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
