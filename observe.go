package murphy

import (
	"net/http"

	"murphy/internal/obs"
)

// Stage identifies one phase of the diagnosis pipeline as seen by an
// Observer: train, prune, test, rank, explain.
type Stage = obs.Stage

// The pipeline stages, in execution order.
const (
	StageTrain   = obs.StageTrain
	StagePrune   = obs.StagePrune
	StageTest    = obs.StageTest
	StageRank    = obs.StageRank
	StageExplain = obs.StageExplain
)

// Observer receives the live event stream of an instrumented System:
// StageStart/StageEnd around every pipeline stage (with wall and process-CPU
// timings) and Progress as the candidate tests advance ("tested 14/63").
// Callbacks are serialized by the System — even when events originate on
// concurrent DiagnoseParallel workers — so implementations need no locking;
// they must not block, since they run inline with the pipeline.
type Observer = obs.Observer

// PipelineStats is a point-in-time copy of a System's instrumentation:
// per-stage span totals, counters, and histograms. It serializes to JSON and
// renders as an operator table via Table.
type PipelineStats = obs.Snapshot

// Recorder is the underlying instrumentation recorder a System writes its
// spans, counters, and histograms into. It is shared state: several Systems
// (or a System and the serve daemon's admission/queue machinery) may write
// into one Recorder so a single /metrics endpoint tells the whole story.
type Recorder = obs.Recorder

// NewRecorder returns a fresh, disabled Recorder, for sharing between a
// System (via WithRecorder) and other writers before enabling collection.
func NewRecorder() *Recorder { return obs.New() }

// WithRecorder makes the System record its instrumentation into r instead of
// a private recorder, so pipeline counters and externally recorded ones (the
// diagnosis daemon's ingest/queue/shedding counters) share one snapshot and
// one /metrics exposition. Apply it before WithObserver/WithStats — those
// act on whichever recorder the System holds at that point. A nil r is
// ignored.
func WithRecorder(r *Recorder) Option {
	return func(s *System) {
		if r != nil {
			s.rec = r
		}
	}
}

// WithObserver subscribes an observer to the pipeline's event stream and
// enables instrumentation for the session. Several observers may be
// attached; they all see the same serialized stream.
func WithObserver(o Observer) Option {
	return func(s *System) {
		s.rec.Attach(o)
		s.rec.Enable()
	}
}

// WithStats enables passive instrumentation (spans, counters, histograms —
// no observer callbacks); read the result back with Stats. Without this (or
// WithObserver) the instrumentation layer stays disabled and costs one
// predicted branch per call site.
func WithStats() Option {
	return func(s *System) { s.rec.Enable() }
}

// EnableStats turns instrumentation collection on (equivalent to the
// WithStats option, after construction); DisableStats turns it off again,
// keeping accumulated data.
func (s *System) EnableStats() { s.rec.Enable() }

// DisableStats stops instrumentation collection; accumulated data is kept.
func (s *System) DisableStats() { s.rec.Disable() }

// Stats returns a snapshot of the session's pipeline instrumentation. All
// zeros (Enabled false) unless WithStats/WithObserver/EnableStats turned
// collection on.
func (s *System) Stats() PipelineStats { return s.rec.Snapshot() }

// ResetStats zeroes the session's counters, stage totals, and histograms
// (observers stay attached). Meant for quiescent points between runs.
func (s *System) ResetStats() { s.rec.Reset() }

// MetricsHandler serves the session's instrumentation in the Prometheus text
// exposition format (the murphy_ namespace).
func (s *System) MetricsHandler() http.Handler { return s.rec.Handler() }

// ObservabilityMux builds an HTTP mux exposing the session's
// instrumentation: /metrics (Prometheus text), /stats (the PipelineStats
// JSON), /debug/vars (expvar), and — when withPprof is true —
// /debug/pprof/*. Mount it on a side port for always-on deployments so stage
// timings and profiles are scrapeable while diagnoses run.
func (s *System) ObservabilityMux(withPprof bool) *http.ServeMux {
	return obs.NewServeMux(s.rec, withPprof)
}
