package murphy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"murphy/internal/anomaly"
	"murphy/internal/graph"
	"murphy/internal/telemetry"
)

// ErrUnknownEntity reports a query against an entity the monitoring database
// does not know. The daemon's query surface maps it to HTTP 404.
var ErrUnknownEntity = errors.New("murphy: unknown entity")

// Topology query bounds.
const (
	// DefaultTopologyDepth is the neighborhood radius used when a topology
	// query names none.
	DefaultTopologyDepth = 2
	// MaxTopologyDepth caps the neighborhood radius; oversized requests are
	// clamped (and the effective depth echoed in the response), never errors.
	MaxTopologyDepth = 6
)

// TopologyNode is one entity in a topology neighborhood.
type TopologyNode struct {
	// Ref is the entity ID.
	Ref telemetry.EntityID `json:"ref"`
	// Type, Name, App, and Tier mirror the entity's metadata.
	Type telemetry.EntityType `json:"type"`
	Name string               `json:"name,omitempty"`
	App  string               `json:"app,omitempty"`
	Tier string               `json:"tier,omitempty"`
	// Hops is the undirected BFS distance from the center entity (0 for the
	// center itself).
	Hops int `json:"hops"`
	// HopsToCenter is the directed forward-edge distance from this node to
	// the center, or -1 when the center is unreachable. A non-negative value
	// means the node can influence the center under the relationship graph's
	// potential-influence semantics (§4.1).
	HopsToCenter int `json:"hops_to_center"`
	// InfluencesCenter is HopsToCenter >= 0, precomputed for operators.
	InfluencesCenter bool `json:"influences_center"`
}

// TopologyEdge is one relationship in a topology neighborhood. A mutual
// association (both directions present) is emitted once with Mutual set.
type TopologyEdge struct {
	From telemetry.EntityID `json:"from"`
	To   telemetry.EntityID `json:"to"`
	// Kind types the relationship by its endpoint entity types,
	// "fromType->toType".
	Kind   string `json:"kind"`
	Mutual bool   `json:"mutual,omitempty"`
}

// Topology is the relationship-graph neighborhood around one entity, as
// served by the daemon's GET /topology. Nodes are sorted by (Hops, Ref) and
// edges by (From, To), so the same database state always serializes to the
// same bytes.
type Topology struct {
	Center telemetry.EntityID `json:"center"`
	// Depth is the effective neighborhood radius (requested, defaulted, or
	// clamped to MaxTopologyDepth).
	Depth int            `json:"depth"`
	Nodes []TopologyNode `json:"nodes"`
	Edges []TopologyEdge `json:"edges"`
}

// Topology returns the relationship-graph neighborhood of radius depth around
// an entity, built live against the current monitoring database (entities
// ingested after the session started are visible). depth <= 0 uses
// DefaultTopologyDepth; anything above MaxTopologyDepth is clamped, with the
// effective depth echoed in the result. Returns ErrUnknownEntity for an
// entity the database does not know.
func (s *System) Topology(entity telemetry.EntityID, depth int) (*Topology, error) {
	if !s.db.HasEntity(entity) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEntity, entity)
	}
	if depth <= 0 {
		depth = DefaultTopologyDepth
	}
	if depth > MaxTopologyDepth {
		depth = MaxTopologyDepth
	}
	g, err := graph.Build(s.db, []telemetry.EntityID{entity}, depth)
	if err != nil {
		return nil, fmt.Errorf("murphy: build topology neighborhood: %w", err)
	}
	// Reverse-BFS distance field toward the center, through the same
	// SubgraphCache machinery a diagnosis shares across candidates.
	toCenter := graph.NewSubgraphCache(g).ReverseDistances(entity)
	hops := undirectedHops(g, entity)

	top := &Topology{Center: entity, Depth: depth}
	for i, id := range g.IDs() {
		n := TopologyNode{Ref: id, Hops: hops[i], HopsToCenter: -1}
		if len(toCenter) > i {
			n.HopsToCenter = toCenter[i]
		}
		n.InfluencesCenter = n.HopsToCenter >= 0
		if ent := s.db.Entity(id); ent != nil {
			n.Type, n.Name, n.App, n.Tier = ent.Type, ent.Name, ent.App, ent.Tier
		}
		top.Nodes = append(top.Nodes, n)
	}
	sort.Slice(top.Nodes, func(i, j int) bool {
		if top.Nodes[i].Hops != top.Nodes[j].Hops {
			return top.Nodes[i].Hops < top.Nodes[j].Hops
		}
		return top.Nodes[i].Ref < top.Nodes[j].Ref
	})
	for ui := 0; ui < g.Len(); ui++ {
		u := g.ID(ui)
		for _, vi := range g.Out(ui) {
			v := g.ID(vi)
			mutual := hasOut(g, vi, ui)
			if mutual && v < u {
				continue // the (smaller, larger) orientation emits the pair
			}
			top.Edges = append(top.Edges, TopologyEdge{
				From:   u,
				To:     v,
				Kind:   edgeKind(s.db, u, v),
				Mutual: mutual,
			})
		}
	}
	sort.Slice(top.Edges, func(i, j int) bool {
		if top.Edges[i].From != top.Edges[j].From {
			return top.Edges[i].From < top.Edges[j].From
		}
		return top.Edges[i].To < top.Edges[j].To
	})
	return top, nil
}

// undirectedHops is the BFS level of every node from src, ignoring edge
// direction — the "how far out in the neighborhood" number operators read.
func undirectedHops(g *graph.Graph, src telemetry.EntityID) []int {
	dist := make([]int, g.Len())
	for i := range dist {
		dist[i] = -1
	}
	si, ok := g.Index(src)
	if !ok {
		return dist
	}
	dist[si] = 0
	queue := []int{si}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, adj := range [][]int{g.Out(u), g.In(u)} {
			for _, v := range adj {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return dist
}

// hasOut reports whether node u has a directed edge to node v.
func hasOut(g *graph.Graph, u, v int) bool {
	for _, w := range g.Out(u) {
		if w == v {
			return true
		}
	}
	return false
}

// edgeKind types an edge by its endpoint entity types.
func edgeKind(db *telemetry.DB, from, to telemetry.EntityID) string {
	ft, tt := "unknown", "unknown"
	if e := db.Entity(from); e != nil && e.Type != "" {
		ft = string(e.Type)
	}
	if e := db.Entity(to); e != nil && e.Type != "" {
		tt = string(e.Type)
	}
	return ft + "->" + tt
}

// MetricSummary is the sliding-window statistics of one metric, as served by
// the daemon's per-entity performance endpoint. Float fields are pointers so
// an empty window (nothing observed) serializes as null, never NaN.
type MetricSummary struct {
	Metric string `json:"metric"`
	// Observed and Missing partition the window's slices.
	Observed int `json:"observed"`
	Missing  int `json:"missing,omitempty"`
	// Latest is the newest observed value in the window.
	Latest *float64 `json:"latest"`
	// Mean and the percentiles summarize the observed values.
	Mean *float64 `json:"mean"`
	P50  *float64 `json:"p50"`
	P95  *float64 `json:"p95"`
	P99  *float64 `json:"p99"`
	// AnomalyZ is the continuous detector's signed z-score of the current
	// value against the trailing baseline (null while history is too short);
	// Anomalous marks |z| at or above the detector threshold.
	AnomalyZ  *float64 `json:"anomaly_z"`
	Anomalous bool     `json:"anomalous,omitempty"`
}

// FactorHealth is the wire form of one trained factor's residual health (see
// core.FactorStore): whether the incremental trainer holds a fresh model for
// the metric and how far it has drifted.
type FactorHealth struct {
	Metric   string `json:"metric"`
	Trained  bool   `json:"trained"`
	Features int    `json:"features"`
	Slides   int    `json:"slides"`
	// DriftScore is the MASE drift score (0 while evidence is insufficient);
	// the trainer refits the factor once it exceeds DriftThreshold.
	DriftScore     *float64 `json:"drift_score"`
	DriftThreshold float64  `json:"drift_threshold"`
}

// EntitySummary is one entity's performance view over the trailing window:
// per-metric summary statistics, anomaly scores from the continuous detector,
// and — when the session trains incrementally — trained-factor residual
// health. Metrics and factors are sorted by name, so the same database state
// always serializes to the same bytes.
type EntitySummary struct {
	Entity telemetry.EntityID   `json:"entity"`
	Type   telemetry.EntityType `json:"type"`
	Name   string               `json:"name,omitempty"`
	App    string               `json:"app,omitempty"`
	Tier   string               `json:"tier,omitempty"`
	// Window is the effective summary window width in slices; FromSlice and
	// ToSlice are its inclusive bounds ([0, -1] on an empty database).
	Window    int             `json:"window"`
	FromSlice int             `json:"from_slice"`
	ToSlice   int             `json:"to_slice"`
	Metrics   []MetricSummary `json:"metrics"`
	// Factors is present only when incremental training is configured and
	// the store has trained this entity.
	Factors []FactorHealth `json:"factors,omitempty"`
}

// EntitySummary summarizes one entity's performance over the trailing window
// slices (window <= 0 uses the session's training window; wider-than-history
// requests are clamped). Returns ErrUnknownEntity for an entity the database
// does not know.
func (s *System) EntitySummary(entity telemetry.EntityID, window int) (*EntitySummary, error) {
	if !s.db.HasEntity(entity) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEntity, entity)
	}
	n := s.db.Len()
	if window <= 0 {
		window = s.cfg.TrainWindow
	}
	if window > n {
		window = n
	}
	lo, hi := n-window, n
	sum := &EntitySummary{
		Entity:    entity,
		Window:    window,
		FromSlice: lo,
		ToSlice:   hi - 1,
	}
	if ent := s.db.Entity(entity); ent != nil {
		sum.Type, sum.Name, sum.App, sum.Tier = ent.Type, ent.Name, ent.App, ent.Tier
	}
	det := anomaly.NewDetector()
	for _, metric := range s.db.MetricNames(entity) {
		ms := MetricSummary{Metric: metric}
		if window > 0 {
			raw := s.db.RawWindow(entity, metric, lo, hi)
			obs := make([]float64, 0, len(raw))
			for _, v := range raw {
				if v == v {
					obs = append(obs, v)
					latest := v
					ms.Latest = &latest
				}
			}
			ms.Observed = len(obs)
			ms.Missing = len(raw) - len(obs)
			if len(obs) > 0 {
				mean := 0.0
				for _, v := range obs {
					mean += v
				}
				mean /= float64(len(obs))
				ms.Mean = fptr(mean)
				sort.Float64s(obs)
				ms.P50 = fptr(quantile(obs, 0.50))
				ms.P95 = fptr(quantile(obs, 0.95))
				ms.P99 = fptr(quantile(obs, 0.99))
			}
			if z, ok := det.Score(s.db, entity, metric, hi-1); ok {
				ms.AnomalyZ = fptr(z)
				ms.Anomalous = z >= det.ZThreshold || z <= -det.ZThreshold
			}
		}
		sum.Metrics = append(sum.Metrics, ms)
	}
	if s.incStore != nil {
		for _, h := range s.incStore.EntityHealth(entity) {
			sum.Factors = append(sum.Factors, FactorHealth{
				Metric:         h.Metric,
				Trained:        h.Trained,
				Features:       h.Features,
				Slides:         h.Slides,
				DriftScore:     fptr(h.DriftScore),
				DriftThreshold: h.DriftThreshold,
			})
		}
	}
	return sum, nil
}

// quantile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// non-empty slice, by linear interpolation between closest ranks.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
