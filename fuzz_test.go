package murphy

import (
	"bytes"
	"math"
	"testing"

	"murphy/internal/telemetry"
)

// fuzzSeedReport builds a representative report for the corpus: certified and
// degraded causes (NaN verdicts → null on the wire), skipped candidates,
// recent changes, and a partial flag.
func fuzzSeedReport() []byte {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Symptom:       telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true},
		Causes: []Cause{
			{Entity: "crawler", Score: 3.2, PValue: 0.0004, Effect: 0.8, Path: []telemetry.EntityID{"crawler", "flow", "backend"}, SamplesUsed: 600, Explanation: "crawler [heavy hitter] -> backend [degraded performance]"},
			{Entity: "web", Score: 1.1, PValue: math.NaN(), Effect: math.NaN(), Degraded: true, Reason: "deadline exceeded"},
		},
		Candidates:    []telemetry.EntityID{"crawler", "flow", "web"},
		RecentChanges: []telemetry.Event{{Slice: 3, Kind: telemetry.EventConfigChanged, Entity: "web", Detail: "resize"}},
		Partial:       true,
		Skipped:       []Skipped{{Entity: "web", Reason: "deadline exceeded"}},
		ReadFailures:  2,
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReportReadJSON checks that report ingestion never panics on arbitrary
// bytes, rejects future schema versions instead of misreading them, and that
// any accepted report survives a write→read→write round trip with identical
// serialized bytes.
func FuzzReportReadJSON(f *testing.F) {
	f.Add(fuzzSeedReport())
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`{"schema_version":9999,"symptom":{"entity":"x","metric":"cpu_util","high":true},"causes":[]}`))
	f.Add([]byte(`{"schema_version":-1,"causes":[{"entity":"a","score":1,"p_value":null,"effect":null}]}`))
	f.Add([]byte(`{"schema_version":1,"causes":[{"entity":"a","score":1e308,"p_value":5e-324,"effect":-1e308,"samples_used":-1}]}`))
	f.Add([]byte(`{"schema_version":1,"recent_changes":[{"slice":-3,"kind":"spawned","entity":""}],"skipped":[{"entity":"","reason":""}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and misreads are not
		}
		if r.SchemaVersion > SchemaVersion {
			t.Fatalf("accepted report from future schema version %d", r.SchemaVersion)
		}
		var first bytes.Buffer
		if err := r.WriteJSON(&first); err != nil {
			t.Fatalf("accepted report failed to serialize: %v", err)
		}
		r2, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := r2.WriteJSON(&second); err != nil {
			t.Fatalf("second serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→read→write is not a fixed point:\n first: %s\nsecond: %s", first.String(), second.String())
		}
	})
}
