package murphy

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"murphy/internal/telemetry"
)

func TestReportJSONRoundTrip(t *testing.T) {
	sys := testSystem(t)
	report, err := sys.Diagnose(demoSymptom())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version": 1`) {
		t.Errorf("serialized report missing stamped schema version:\n%s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", back.SchemaVersion, SchemaVersion)
	}
	if back.Symptom != report.Symptom {
		t.Errorf("symptom mismatch: %v vs %v", back.Symptom, report.Symptom)
	}
	if len(back.Causes) != len(report.Causes) {
		t.Fatalf("cause count %d vs %d", len(back.Causes), len(report.Causes))
	}
	for i, want := range report.Causes {
		got := back.Causes[i]
		if got.Entity != want.Entity || got.Score != want.Score ||
			got.Explanation != want.Explanation || len(got.Path) != len(want.Path) {
			t.Errorf("cause %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got, want)
		}
		if got.PValue != want.PValue && !(math.IsNaN(got.PValue) && math.IsNaN(want.PValue)) {
			t.Errorf("cause %d p-value %v vs %v", i, got.PValue, want.PValue)
		}
	}
	if len(back.Candidates) != len(report.Candidates) {
		t.Errorf("candidate count %d vs %d", len(back.Candidates), len(report.Candidates))
	}
}

// Degraded causes carry NaN p-values and effects; JSON has no NaN, so the
// wire format uses null and the round trip must restore NaN.
func TestReportJSONDegradedNaN(t *testing.T) {
	r := &Report{
		Symptom: telemetry.Symptom{Entity: "web", Metric: "cpu_util", High: true},
		Causes: []Cause{
			{Entity: "backend", Score: 3.5, PValue: math.NaN(), Effect: math.NaN(),
				Degraded: true, Reason: "insufficient history"},
		},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"p_value": null`) {
		t.Errorf("NaN p-value should serialize as null:\n%s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Causes) != 1 {
		t.Fatalf("lost the degraded cause: %+v", back)
	}
	c := back.Causes[0]
	if !math.IsNaN(c.PValue) || !math.IsNaN(c.Effect) {
		t.Errorf("null should deserialize to NaN, got p=%v effect=%v", c.PValue, c.Effect)
	}
	if !c.Degraded || c.Reason != "insufficient history" {
		t.Errorf("degradation fields lost: %+v", c)
	}
}

func TestReadJSONRejectsNewerSchema(t *testing.T) {
	in := strings.NewReader(`{"schema_version": 999, "symptom": {"entity": "x", "metric": "m", "high": true}}`)
	if _, err := ReadJSON(in); err == nil {
		t.Fatal("ReadJSON accepted a schema version from the future")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("ReadJSON accepted malformed input")
	}
}
