package murphy

import (
	"testing"

	"murphy/internal/chaos"
	"murphy/internal/telemetry"
)

func sameCauses(t *testing.T, label string, want, got *Report, exact bool) {
	t.Helper()
	if len(want.Causes) != len(got.Causes) {
		t.Fatalf("%s: %d causes vs %d", label, len(want.Causes), len(got.Causes))
	}
	for i := range want.Causes {
		a, b := want.Causes[i], got.Causes[i]
		if a.Entity != b.Entity {
			t.Fatalf("%s: cause %d: %q vs %q", label, i, a.Entity, b.Entity)
		}
		if exact && (a.Score != b.Score || a.PValue != b.PValue && !(a.PValue != a.PValue && b.PValue != b.PValue)) {
			t.Fatalf("%s: cause %d not bit-identical: %+v vs %+v", label, i, a, b)
		}
	}
}

// TestWithIncrementalTrainingEndToEnd: a session with incremental training
// diagnoses identically to a plain session — bit-identical on the anchoring
// call, same certified causes after the window slides — while serving
// factors from slid statistics instead of retraining.
func TestWithIncrementalTrainingEndToEnd(t *testing.T) {
	db := demoDB(t)
	cfg := DefaultConfig()
	cfg.Samples = 300
	cfg.TrainWindow = 220
	plain, err := New(db, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(db, WithConfig(cfg), WithIncrementalTraining(IncrementalTraining{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.FactorStoreStats(); ok {
		t.Fatal("plain session should report no factor store")
	}
	sym := telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true}

	want, err := plain.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Diagnose(sym)
	if err != nil {
		t.Fatal(err)
	}
	sameCauses(t, "anchor", want, got, true)

	// Slide the window: new observations arrive, both sessions re-diagnose.
	start := db.Len()
	for tt := start; tt < start+5; tt++ {
		for _, ob := range []struct {
			id telemetry.EntityID
			m  string
			v  float64
		}{
			{"crawler", telemetry.MetricNetTx, 3400},
			{"flow", telemetry.MetricSessions, 341},
			{"flow", telemetry.MetricThroughput, 510000},
			{"web", telemetry.MetricCPU, 0.44},
			{"backend", telemetry.MetricCPU, 0.63},
		} {
			if err := db.Observe(ob.id, ob.m, tt, ob.v); err != nil {
				t.Fatal(err)
			}
		}
		want, err = plain.Diagnose(sym)
		if err != nil {
			t.Fatal(err)
		}
		got, err = inc.Diagnose(sym)
		if err != nil {
			t.Fatal(err)
		}
		sameCauses(t, "slide", want, got, false)
	}
	st, ok := inc.FactorStoreStats()
	if !ok {
		t.Fatal("FactorStoreStats should be available")
	}
	if st.Hits == 0 || st.Slides == 0 {
		t.Fatalf("sliding session should hit the incremental path: %+v", st)
	}
	if inc.FactorStore() == nil {
		t.Fatal("FactorStore handle should be exposed")
	}
}

// TestWithIncrementalTrainingPrecedence mirrors the WithSampler bundle
// rules: non-zero fields override, zero fields inherit, and option order
// does not matter.
func TestWithIncrementalTrainingPrecedence(t *testing.T) {
	// Zero-value bundle: own store with the default policy.
	sys := testSystem(t, WithIncrementalTraining(IncrementalTraining{}))
	st, ok := sys.FactorStoreStats()
	if !ok || st.DriftThreshold != 4.0 || st.RefreshEvery != 512 {
		t.Fatalf("zero bundle should inherit defaults: %+v (ok=%v)", st, ok)
	}

	// Non-zero fields override on a shared store.
	shared := NewFactorStore()
	sys2 := testSystem(t, WithIncrementalTraining(IncrementalTraining{
		Store: shared, DriftThreshold: 2.5, RefreshEvery: 64,
	}))
	if sys2.FactorStore() != shared {
		t.Fatal("shared store should be installed")
	}
	if st, _ := sys2.FactorStoreStats(); st.DriftThreshold != 2.5 || st.RefreshEvery != 64 {
		t.Fatalf("non-zero fields should override: %+v", st)
	}

	// Zero fields inherit the store's current policy instead of resetting.
	sys3 := testSystem(t, WithIncrementalTraining(IncrementalTraining{Store: shared}))
	if st, _ := sys3.FactorStoreStats(); st.DriftThreshold != 2.5 || st.RefreshEvery != 64 {
		t.Fatalf("zero fields should inherit the shared store's policy: %+v", st)
	}
}

// TestIncrementalTrainingSupersedesCaching: with both reuse mechanisms
// configured the store takes over and the cache sees no traffic, in either
// option order.
func TestIncrementalTrainingSupersedesCaching(t *testing.T) {
	sym := telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true}
	for _, order := range []string{"cache-first", "store-first"} {
		cache := NewFactorCache(0)
		store := NewFactorStore()
		opts := []Option{
			WithCaching(Caching{Shared: cache}),
			WithIncrementalTraining(IncrementalTraining{Store: store}),
		}
		if order == "store-first" {
			opts[0], opts[1] = opts[1], opts[0]
		}
		sys := testSystem(t, opts...)
		if _, err := sys.Diagnose(sym); err != nil {
			t.Fatal(err)
		}
		if cs, _ := sys.FactorCacheStats(); cs.Hits != 0 || cs.Misses != 0 {
			t.Fatalf("%s: cache should see no traffic: %+v", order, cs)
		}
		if ss, _ := sys.FactorStoreStats(); ss.Refits == 0 {
			t.Fatalf("%s: store should have anchored: %+v", order, ss)
		}
	}
}

// TestIncrementalTrainingBypassedWithSource: an interposed (fallible) read
// path bypasses the store exactly like it bypasses the cache.
func TestIncrementalTrainingBypassedWithSource(t *testing.T) {
	db := demoDB(t)
	cfg := DefaultConfig()
	cfg.Samples = 200
	cfg.TrainWindow = 220
	store := NewFactorStore()
	sys, err := New(db, WithConfig(cfg),
		WithIncrementalTraining(IncrementalTraining{Store: store}),
		WithResilience(Resilience{Source: chaos.Wrap(db, chaos.Config{})}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Diagnose(telemetry.Symptom{Entity: "backend", Metric: telemetry.MetricCPU, High: true}); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.FactorStoreStats(); st.Hits != 0 || st.Refits != 0 {
		t.Fatalf("interposed source must bypass the store: %+v", st)
	}
}
